#include "service/net_server.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>

#include "common/fault.hpp"

namespace qfto {
namespace net {

namespace {

/// First line of a connection: HTTP request line or a JSON object? The JSON
/// protocol's lines start with '{', so a method prefix is unambiguous.
bool looks_http(const std::string& line) {
  return (line.rfind("GET ", 0) == 0 || line.rfind("POST ", 0) == 0 ||
          line.rfind("HEAD ", 0) == 0) &&
         line.find(" HTTP/1.") != std::string::npos;
}

std::string http_response(const char* status, const std::string& body) {
  std::string out = "HTTP/1.1 ";
  out += status;
  out += "\r\nContent-Type: application/json\r\nContent-Length: ";
  out += std::to_string(body.size() + 1);
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  out += '\n';
  return out;
}

bool iequals(const std::string& a, const char* b) {
  std::size_t i = 0;
  for (; i < a.size() && b[i] != '\0'; ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return i == a.size() && b[i] == '\0';
}

}  // namespace

/// One queued response slot: either a JobHandle the writer will wait on, or
/// a pre-formatted immediate body (parse errors, shed notices, metrics).
struct NetServer::Pending {
  enum class Kind { kJob, kImmediate, kParseError, kShed };

  Kind kind = Kind::kImmediate;
  std::string id = "null";
  JobHandle handle;       // kJob
  std::string immediate;  // everything else
  bool http = false;
  const char* http_status = "200 OK";
};

struct NetServer::Connection {
  explicit Connection(Socket s) : sock(std::move(s)) {}

  Socket sock;

  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Pending> pending;   // response queue, request order
  std::size_t jobs_pending = 0;  // entries in `pending` that carry a job
  JobHandle writing;             // job the writer is currently waiting on
  bool reader_done = false;
  bool dead = false;  // writer hit a send failure; connection is abandoned

  /// Both threads have exited — the accept loop may join and reap.
  std::atomic<int> exited{0};
  std::atomic<bool> finished{false};

  std::thread reader;
  std::thread writer;

  void mark_exited() {
    if (exited.fetch_add(1, std::memory_order_acq_rel) + 1 == 2) {
      finished.store(true, std::memory_order_release);
    }
  }
};

// --------------------------------------------------------------- NetServer --

NetServer::NetServer(MappingService& service, Options options)
    : service_(&service),
      options_(std::move(options)),
      listener_(options_.host, options_.port) {
  // Self-pipe for signal-safe shutdown wake-ups. Non-blocking on both ends:
  // the handler's write must never block (a full pipe just means the wake-up
  // is already latched). On failure the fds stay -1 and the accept loop
  // falls back to its poll timeout — slower to stop, still correct.
  if (::pipe(wake_pipe_) == 0) {
    for (int fd : wake_pipe_) {
      ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
      ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    }
  } else {
    wake_pipe_[0] = wake_pipe_[1] = -1;
  }
}

NetServer::~NetServer() {
  request_stop();
  stop_and_drain();
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void NetServer::request_stop() {
  // Async-signal-safe: atomic store + write(). Nothing here may take a lock
  // or allocate — the CLI's SIGTERM handler calls this directly.
  stop_.store(true, std::memory_order_relaxed);
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
  }
}

void NetServer::run() {
  accept_loop();
}

void NetServer::start() {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void NetServer::accept_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    Socket sock = listener_.accept_connection(50, wake_pipe_[0]);
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      reap_finished_locked();
    }
    if (!sock.valid()) continue;  // poll timeout — re-check the stop flag
    sock.set_send_timeout_ms(options_.send_timeout_ms);
    auto conn = std::make_unique<Connection>(std::move(sock));
    Connection* c = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      conns_.push_back(std::move(conn));
    }
    c->reader = std::thread([this, c] { serve_connection(*c); });
    c->writer = std::thread([this, c] { writer_loop(*c); });
  }
}

void NetServer::reap_finished_locked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    Connection& c = **it;
    if (c.finished.load(std::memory_order_acquire)) {
      if (c.reader.joinable()) c.reader.join();
      if (c.writer.joinable()) c.writer.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

NetServer::Pending NetServer::make_entry(Connection& conn,
                                         std::string_view payload) {
  metrics_.requests.fetch_add(1, std::memory_order_relaxed);
  Pending entry;
  ServeRequest req = parse_serve_request(payload);
  metrics_.record_request(req);
  entry.id = req.id;
  if (!req.ok) {
    metrics_.parse_errors.fetch_add(1, std::memory_order_relaxed);
    JobResult rejected;
    rejected.status = JobStatus::kFailed;
    rejected.error = req.error;
    entry.kind = Pending::Kind::kParseError;
    entry.immediate = serve_response_json(req.id, rejected);
    return entry;
  }
  if (req.metrics) {
    entry.kind = Pending::Kind::kImmediate;
    entry.immediate = metrics_json(*service_, metrics_);
    return entry;
  }
  // Admission control. Both bounds are advisory point-in-time reads — two
  // racing readers may both admit at the edge — which is fine: the bound
  // exists to stop unbounded queue growth, not to be an exact semaphore.
  if (QFTO_FAULT_POINT("serve.admit.shed")) {
    metrics_.shed.fetch_add(1, std::memory_order_relaxed);
    entry.kind = Pending::Kind::kShed;
    entry.immediate = serve_inband_error(
        req.id, "shed", "injected fault: admission rejected; retry later");
    return entry;
  }
  if (options_.max_inflight > 0 &&
      metrics_.in_flight.load(std::memory_order_relaxed) >=
          static_cast<std::int64_t>(options_.max_inflight)) {
    metrics_.shed.fetch_add(1, std::memory_order_relaxed);
    entry.kind = Pending::Kind::kShed;
    entry.immediate = serve_inband_error(
        req.id, "shed",
        "server at max in-flight jobs (" +
            std::to_string(options_.max_inflight) + "); retry later");
    return entry;
  }
  {
    std::lock_guard<std::mutex> lock(conn.mutex);
    if (options_.max_pending_per_conn > 0 &&
        conn.jobs_pending >= options_.max_pending_per_conn) {
      metrics_.shed.fetch_add(1, std::memory_order_relaxed);
      entry.kind = Pending::Kind::kShed;
      entry.immediate = serve_inband_error(
          req.id, "shed",
          "connection at max pending requests (" +
              std::to_string(options_.max_pending_per_conn) +
              "); read responses before sending more");
      return entry;
    }
  }
  entry.kind = Pending::Kind::kJob;
  entry.handle = service_->submit(std::move(req.request), req.submit);
  metrics_.in_flight.fetch_add(1, std::memory_order_relaxed);
  return entry;
}

void NetServer::serve_connection(Connection& conn) {
  LineReader reader(conn.sock, options_.max_line);
  // Back-pressure: the reader stalls once the writer is this far behind, so
  // a client that writes without reading cannot grow the response queue
  // without bound. Above max_pending_per_conn so shed notices still queue.
  const std::size_t backlog_bound = options_.max_pending_per_conn + 64;
  const auto push = [&](Pending entry) {
    bool was_dead;
    {
      std::unique_lock<std::mutex> lock(conn.mutex);
      conn.cv.wait(lock, [&] {
        return conn.dead || conn.pending.size() < backlog_bound;
      });
      was_dead = conn.dead;
      if (!was_dead) {
        if (entry.kind == Pending::Kind::kJob) ++conn.jobs_pending;
        conn.pending.push_back(std::move(entry));
      }
    }
    if (was_dead) {
      // The writer is gone; nobody will drain this entry.
      if (entry.handle.valid()) {
        entry.handle.cancel();
        metrics_.in_flight.fetch_sub(1, std::memory_order_relaxed);
      }
      return false;
    }
    conn.cv.notify_all();
    return true;
  };

  std::string line;
  bool first = true;
  while (reader.next(line)) {
    if (first && looks_http(line)) {
      serve_http(conn, reader, line);
      break;
    }
    first = false;
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    if (!push(make_entry(conn, line))) break;
  }
  if (reader.status() == LineReader::Status::kOverflow) {
    // Protocol violation: report in-band, then stop reading — the rest of
    // the stream has no trustworthy framing.
    metrics_.requests.fetch_add(1, std::memory_order_relaxed);
    metrics_.parse_errors.fetch_add(1, std::memory_order_relaxed);
    Pending entry;
    entry.kind = Pending::Kind::kParseError;
    entry.immediate = serve_inband_error(
        "null", "error",
        "request line exceeds " + std::to_string(options_.max_line) +
            " bytes");
    push(std::move(entry));
  }
  {
    std::lock_guard<std::mutex> lock(conn.mutex);
    conn.reader_done = true;
  }
  conn.cv.notify_all();
  conn.mark_exited();
}

void NetServer::serve_http(Connection& conn, LineReader& reader,
                           const std::string& request_line) {
  const auto push = [&](Pending entry) {
    {
      std::lock_guard<std::mutex> lock(conn.mutex);
      if (conn.dead) return;
      if (entry.kind == Pending::Kind::kJob) ++conn.jobs_pending;
      conn.pending.push_back(std::move(entry));
    }
    conn.cv.notify_all();
  };
  const auto simple = [&](const char* status, const std::string& word,
                          const std::string& error) {
    metrics_.requests.fetch_add(1, std::memory_order_relaxed);
    Pending entry;
    entry.http = true;
    entry.http_status = status;
    entry.immediate = serve_inband_error("null", word, error);
    push(std::move(entry));
  };

  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 = request_line.find(' ', sp1 + 1);
  const std::string method = request_line.substr(0, sp1);
  const std::string path =
      sp2 == std::string::npos ? "" : request_line.substr(sp1 + 1, sp2 - sp1 - 1);

  // Headers: only Content-Length matters to this adapter.
  long long content_length = -1;
  std::string line;
  while (reader.next(line)) {
    if (line.empty()) break;  // end of headers (CRLF already stripped)
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string key = line.substr(0, colon);
    if (iequals(key, "content-length")) {
      content_length = std::strtoll(line.c_str() + colon + 1, nullptr, 10);
    }
  }

  if (method == "GET" && path == "/metrics") {
    metrics_.requests.fetch_add(1, std::memory_order_relaxed);
    Pending entry;
    entry.http = true;
    entry.immediate = metrics_json(*service_, metrics_);
    push(std::move(entry));
    return;
  }
  if (method == "POST" && path == "/map") {
    if (content_length < 0 ||
        content_length > static_cast<long long>(options_.max_line)) {
      simple("411 Length Required", "error",
             "POST /map requires a Content-Length within the line bound");
      return;
    }
    std::string body;
    if (!reader.read_exact(static_cast<std::size_t>(content_length), body)) {
      return;  // body never arrived; nothing to answer
    }
    Pending entry = make_entry(conn, body);
    entry.http = true;
    if (entry.kind == Pending::Kind::kParseError) {
      entry.http_status = "400 Bad Request";
    } else if (entry.kind == Pending::Kind::kShed) {
      entry.http_status = "503 Service Unavailable";
    }
    push(std::move(entry));
    return;
  }
  simple("404 Not Found", "error",
         "unsupported endpoint (GET /metrics, POST /map)");
}

void NetServer::writer_loop(Connection& conn) {
  for (;;) {
    Pending entry;
    {
      std::unique_lock<std::mutex> lock(conn.mutex);
      conn.cv.wait(lock, [&] {
        return conn.dead || conn.reader_done || !conn.pending.empty();
      });
      if (conn.dead || conn.pending.empty()) break;  // abandoned or drained
      entry = std::move(conn.pending.front());
      conn.pending.pop_front();
      if (entry.kind == Pending::Kind::kJob) {
        --conn.jobs_pending;
        // Visible to stop_and_drain so a past-budget drain can cancel the
        // job this writer is about to block on.
        conn.writing = entry.handle;
      }
    }
    conn.cv.notify_all();  // reader may be waiting on the back-pressure bound

    std::string body;
    if (entry.handle.valid()) {
      const JobResult result = entry.handle.wait();
      metrics_.record_result(result);
      metrics_.in_flight.fetch_sub(1, std::memory_order_relaxed);
      body = serve_response_json(entry.id, result);
      std::lock_guard<std::mutex> lock(conn.mutex);
      conn.writing = JobHandle();
    } else {
      body = entry.immediate;
    }

    const bool sent =
        entry.http ? conn.sock.send_all(http_response(entry.http_status, body))
                   : conn.sock.send_all(body + "\n");
    if (!sent) {
      // Dead client: stop the reader, drop the backlog, cancel its jobs —
      // the pool must not grind through work nobody can receive.
      std::deque<Pending> orphans;
      {
        std::lock_guard<std::mutex> lock(conn.mutex);
        conn.dead = true;
        orphans.swap(conn.pending);
        conn.jobs_pending = 0;
      }
      conn.cv.notify_all();
      conn.sock.shutdown_read();
      for (Pending& orphan : orphans) {
        if (orphan.handle.valid()) {
          orphan.handle.cancel();
          metrics_.in_flight.fetch_sub(1, std::memory_order_relaxed);
        }
      }
      break;
    }
    metrics_.responses.fetch_add(1, std::memory_order_relaxed);
  }
  conn.mark_exited();
}

void NetServer::stop_and_drain() {
  request_stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (drained_) return;
  drained_ = true;
  listener_.close();

  // Half-close every connection: blocked readers wake with EOF, no further
  // requests are admitted, writers keep draining queued responses.
  std::vector<Connection*> live;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    live.reserve(conns_.size());
    for (auto& conn : conns_) live.push_back(conn.get());
  }
  for (Connection* conn : live) conn->sock.shutdown_read();

  // Drain budget: let in-flight jobs finish and responses flush.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(std::max(0.0, options_.drain_seconds));
  const auto all_finished = [&] {
    return std::all_of(live.begin(), live.end(), [](Connection* c) {
      return c->finished.load(std::memory_order_acquire);
    });
  };
  while (!all_finished() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Past the budget: flip cancel tokens on everything still pending or
  // being waited on. Writers then complete quickly (cancelled results) and
  // connections wind down.
  if (!all_finished()) {
    for (Connection* conn : live) {
      std::lock_guard<std::mutex> lock(conn->mutex);
      for (Pending& entry : conn->pending) {
        if (entry.handle.valid()) entry.handle.cancel();
      }
      if (conn->writing.valid()) conn->writing.cancel();
    }
  }

  std::lock_guard<std::mutex> lock(conns_mutex_);
  for (auto& conn : conns_) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
  }
  conns_.clear();
}

}  // namespace net
}  // namespace qfto
