// Low-level serving transport: RAII POSIX TCP sockets (listener + connection
// + client-side dial), newline framing with a hard line-length bound, and a
// lock-free log-bucketed latency histogram. This is the substrate the
// NetServer (service/net_server.hpp) builds its accept loop on; tests,
// benchmarks and CI smoke clients reuse the same pieces, so client and
// server agree on framing by construction.
//
// IPv4 only (numeric addresses plus "localhost"), blocking sockets with
// poll()-bounded accepts and a send timeout — the bounded-resource serving
// discipline, applied to the socket layer: no operation here can block
// forever on a dead peer.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace qfto {
namespace net {

/// Move-only RAII wrapper over a connected socket fd. Reads and writes
/// retry EINTR; send_all additionally loops over partial writes and treats a
/// send timeout (SO_SNDTIMEO, set by the server on accepted sockets) as a
/// dead peer.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Writes all of `data`; false on any error (EPIPE, reset, send timeout).
  bool send_all(const void* data, std::size_t len);
  bool send_all(const std::string& s) { return send_all(s.data(), s.size()); }

  /// One recv: bytes read, 0 on orderly EOF, -1 on error.
  long recv_some(void* buf, std::size_t len);

  /// Half-close the read side: a blocked or future recv returns EOF. Used to
  /// stop a connection's reader from another thread (drain, dead client).
  void shutdown_read();

  /// SO_SNDTIMEO: a send blocked longer than this fails (and send_all treats
  /// it as a dead peer) instead of wedging a writer thread forever on a
  /// stalled client. 0 disables the timeout.
  void set_send_timeout_ms(int ms);

 private:
  int fd_ = -1;
};

struct HostPort {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Parses "HOST:PORT" (numeric IPv4 or "localhost"; port 0..65535). False
/// with a message in `error` on malformed input.
bool parse_host_port(const std::string& text, HostPort& out,
                     std::string& error);

/// Client-side TCP connect; invalid Socket (and `error`, when non-null) on
/// failure. Tests, benchmarks and smoke clients use this.
Socket dial(const std::string& host, std::uint16_t port,
            std::string* error = nullptr);

/// Listening IPv4 TCP socket. Binds and listens in the constructor — throws
/// std::runtime_error on failure (address in use, bad host). Port 0 binds an
/// ephemeral port; port() reports the actual one, which is how tests and CI
/// avoid collisions.
class Listener {
 public:
  Listener(const std::string& host, std::uint16_t port, int backlog = 64);

  std::uint16_t port() const { return port_; }
  const std::string& host() const { return host_; }
  bool valid() const { return sock_.valid(); }

  /// Waits up to `timeout_ms` for a connection (poll + accept). Invalid
  /// Socket on timeout or listener failure — callers poll in a loop against
  /// their own stop flag rather than blocking indefinitely. When `wake_fd`
  /// is >= 0 it is polled alongside the listener; readability there (the
  /// self-pipe a signal handler writes to) aborts the wait immediately so a
  /// SIGTERM drain does not sit out the remaining timeout.
  Socket accept_connection(int timeout_ms, int wake_fd = -1);

  void close() { sock_.close(); }

 private:
  Socket sock_;
  std::string host_;
  std::uint16_t port_ = 0;
};

/// Buffered newline-framed reader over a Socket: the request framing the
/// server uses, and the response framing clients use. A line longer than
/// `max_line` is a protocol violation (status kOverflow) — the bound is what
/// keeps a hostile client from growing one buffer without limit. A trailing
/// '\r' is stripped so HTTP-style CRLF lines parse transparently.
class LineReader {
 public:
  enum class Status { kOk, kEof, kError, kOverflow };

  explicit LineReader(Socket& sock, std::size_t max_line = 1 << 20)
      : sock_(&sock), max_line_(max_line) {}

  /// Next complete line (terminator removed). False on EOF / error /
  /// overflow — classify with status(). Data after the last newline when EOF
  /// hits is an incomplete frame and is deliberately dropped.
  bool next(std::string& line);

  /// Exactly `n` more bytes (drains the line buffer first) — HTTP bodies.
  bool read_exact(std::size_t n, std::string& out);

  Status status() const { return status_; }

 private:
  bool fill();

  Socket* sock_;
  std::size_t max_line_;
  std::string buf_;
  std::size_t pos_ = 0;
  Status status_ = Status::kOk;
};

/// Client-side retry discipline: jittered exponential backoff. Deterministic
/// given the seed, so tests can assert the exact delay schedule.
struct RetryPolicy {
  int max_attempts = 4;        // total tries, including the first
  double base_seconds = 0.05;  // delay before the first retry
  double multiplier = 2.0;     // growth per retry
  double max_seconds = 1.0;    // backoff ceiling (pre-jitter)
  std::uint64_t jitter_seed = 1;
};

/// Delay before retry number `attempt` (1-based: the delay between try 1 and
/// try 2 is attempt=1). Exponential growth clamped to max_seconds, then
/// scaled by a deterministic jitter factor in [0.5, 1.0] — full-jitter halves
/// thundering herds without making test schedules unpredictable.
double backoff_delay(const RetryPolicy& policy, int attempt);

struct RetryResult {
  bool ok = false;     // a response line was received (it may still carry
                       // an in-band non-retryable failure)
  int attempts = 0;    // tries consumed
  std::string response;  // the response line (when ok)
  std::string error;     // last transport error (when !ok)
};

/// One-request client with the retry discipline the serve protocol's
/// `retryable` flag asks for: dial, send `request_line` (a '\n' is appended
/// when missing), read one response line. Retries — after backoff_delay —
/// on dial/send failure, connection loss before a full line, and on
/// responses flagged `"retryable":true` (matched textually; the transport
/// layer deliberately does not parse the serve JSON). Non-retryable
/// responses return immediately with ok = true.
RetryResult request_with_retry(const std::string& host, std::uint16_t port,
                               const std::string& request_line,
                               const RetryPolicy& policy = RetryPolicy{});

/// Wait-free log-bucketed latency histogram: ~1 µs to ~18 minutes at four
/// buckets per octave (~19% relative resolution). record() is one relaxed
/// fetch_add, so every connection thread stamps into one shared instance
/// without a lock; quantile() sweeps a relaxed snapshot — monitoring-grade,
/// not a barrier.
class LatencyHistogram {
 public:
  void record(double seconds);

  /// Approximate q-quantile (0 < q <= 1) in seconds: the geometric midpoint
  /// of the bucket holding the q-th sample. 0 when empty.
  double quantile(double q) const;

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr int kBucketsPerOctave = 4;
  static constexpr int kBuckets = 120;  // 30 octaves above 1 µs
  static constexpr double kFloorSeconds = 1e-6;

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
};

}  // namespace net
}  // namespace qfto
