#include "service/result_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>

namespace qfto {

namespace {

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

ResultCache::ResultCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity) {
  shards = std::max<std::size_t>(1, std::min(shards, std::max<std::size_t>(
                                                         1, capacity)));
  per_shard_capacity_ = capacity == 0 ? 0 : (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::string ResultCache::key(const std::string& engine, std::int32_t native_n,
                             const MapOptions& opts, const Circuit* circuit) {
  std::string k;
  k.reserve(engine.size() + 160);
  k += engine;
  k += '|';
  k += std::to_string(native_n);
  if (circuit != nullptr) {
    // Content fingerprint + gate count: distinct circuits get distinct keys,
    // and "qft" (no |circ= segment) can never alias a general request.
    k += "|circ=";
    k += std::to_string(circuit->fingerprint());
    k += ':';
    k += std::to_string(circuit->size());
  }
  k += "|ie=";
  k += opts.strict_ie ? '1' : '0';
  k += "|po=";
  k += std::to_string(opts.lattice_phase_offset);
  k += "|tus=";
  k += opts.transversal_unit_swap ? '1' : '0';
  k += "|sabre=";
  k += std::to_string(opts.sabre.seed);
  k += ',';
  k += std::to_string(opts.sabre.trials);
  k += ',';
  k += std::to_string(opts.sabre.bidirectional_passes);
  k += ',';
  append_double(k, opts.sabre.extended_weight);
  k += ',';
  k += std::to_string(opts.sabre.extended_size);
  k += ',';
  append_double(k, opts.sabre.decay_delta);
  k += ',';
  k += std::to_string(opts.sabre.decay_reset);
  k += ',';
  k += opts.sabre.use_relaxed_dag ? '1' : '0';
  k += "|satmap=";
  append_double(k, opts.satmap.time_budget_seconds);
  k += ',';
  k += std::to_string(opts.satmap.max_layers);
  k += ',';
  k += opts.satmap.minimize_swaps ? '1' : '0';
  k += ',';
  // A stale hit across solver backends or search drivers would silently
  // return wrong-backend results; both knobs shape the (non-deterministic
  // TLE-vs-solved) outcome, so they fragment the key even though SATMAP
  // itself is never cached today.
  k += opts.satmap.solver;
  k += ',';
  k += opts.satmap.incremental ? '1' : '0';
  k += "|verify=";
  k += opts.verify ? '1' : '0';
  k += opts.incremental_verify ? '1' : '0';
  return k;
}

bool ResultCache::cacheable(const MapperEngine& engine,
                            const MapOptions& opts) {
  return engine.deterministic() && opts.target == nullptr;
}

ResultCache::Shard& ResultCache::shard_for(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const MapResult> ResultCache::get(const std::string& key) {
  if (capacity_ == 0) return nullptr;
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(key);
  if (it == s.index.end()) {
    ++s.misses;
    return nullptr;
  }
  ++s.hits;
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // promote to MRU
  return it->second->second;
}

void ResultCache::put(const std::string& key,
                      std::shared_ptr<const MapResult> value) {
  if (capacity_ == 0 || value == nullptr) return;
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    it->second->second = std::move(value);
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  s.lru.emplace_front(key, std::move(value));
  s.index.emplace(key, s.lru.begin());
  ++s.insertions;
  while (s.lru.size() > per_shard_capacity_) {
    s.index.erase(s.lru.back().first);
    s.lru.pop_back();
    ++s.evictions;
  }
}

void ResultCache::clear() {
  for (auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->mutex);
    sp->lru.clear();
    sp->index.clear();
  }
}

ResultCache::Stats ResultCache::stats() const {
  Stats total;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->mutex);
    total.hits += sp->hits;
    total.misses += sp->misses;
    total.insertions += sp->insertions;
    total.evictions += sp->evictions;
    total.entries += sp->lru.size();
  }
  return total;
}

}  // namespace qfto
