#include "service/result_cache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <istream>
#include <ostream>
#include <sstream>

#include "arch/device_model.hpp"
#include "common/fault.hpp"
#include "qasm/qasm.hpp"

namespace qfto {

namespace {

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

ResultCache::ResultCache(std::size_t capacity, std::size_t shards,
                         double ttl_seconds)
    : capacity_(capacity), ttl_seconds_(ttl_seconds > 0.0 ? ttl_seconds : 0.0) {
  shards = std::max<std::size_t>(1, std::min(shards, std::max<std::size_t>(
                                                         1, capacity)));
  shards_.reserve(shards);
  // Exact split of the global budget: quotas sum to `capacity`, never more.
  const std::size_t base = capacity / shards;
  const std::size_t extra = capacity % shards;
  for (std::size_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = base + (i < extra ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

std::string ResultCache::key(const std::string& engine, std::int32_t native_n,
                             const MapOptions& opts, const Circuit* circuit) {
  std::string k;
  k.reserve(engine.size() + 160);
  k += engine;
  k += '|';
  k += std::to_string(native_n);
  if (circuit != nullptr) {
    // Content fingerprint + gate count: distinct circuits get distinct keys,
    // and "qft" (no |circ= segment) can never alias a general request.
    k += "|circ=";
    k += std::to_string(circuit->fingerprint());
    k += ':';
    k += std::to_string(circuit->size());
  }
  k += "|ie=";
  k += opts.strict_ie ? '1' : '0';
  k += "|po=";
  k += std::to_string(opts.lattice_phase_offset);
  k += "|tus=";
  k += opts.transversal_unit_swap ? '1' : '0';
  k += "|sabre=";
  k += std::to_string(opts.sabre.seed);
  k += ',';
  k += std::to_string(opts.sabre.trials);
  k += ',';
  k += std::to_string(opts.sabre.bidirectional_passes);
  k += ',';
  append_double(k, opts.sabre.extended_weight);
  k += ',';
  k += std::to_string(opts.sabre.extended_size);
  k += ',';
  append_double(k, opts.sabre.decay_delta);
  k += ',';
  k += std::to_string(opts.sabre.decay_reset);
  k += ',';
  k += opts.sabre.use_relaxed_dag ? '1' : '0';
  k += ',';
  k += opts.sabre.fidelity_objective ? '1' : '0';
  k += ',';
  append_double(k, opts.sabre.fidelity_weight);
  k += "|satmap=";
  append_double(k, opts.satmap.time_budget_seconds);
  k += ',';
  k += std::to_string(opts.satmap.max_layers);
  k += ',';
  k += opts.satmap.minimize_swaps ? '1' : '0';
  k += ',';
  // A stale hit across solver backends or search drivers would silently
  // return wrong-backend results; both knobs shape the (non-deterministic
  // TLE-vs-solved) outcome, so they fragment the key even though SATMAP
  // itself is never cached today.
  k += opts.satmap.solver;
  k += ',';
  k += opts.satmap.incremental ? '1' : '0';
  k += ',';
  k += opts.satmap.portfolio ? '1' : '0';
  k += ',';
  k += std::to_string(opts.satmap.lanes);
  k += ',';
  for (const std::string& backend : opts.satmap.portfolio_backends) {
    k += backend;
    k += '+';
  }
  k += ',';
  k += opts.satmap.core_guided ? '1' : '0';
  k += "|verify=";
  k += opts.verify ? '1' : '0';
  k += static_cast<char>('0' + static_cast<int>(opts.verify_mode));
  k += "|obj=";
  k += static_cast<char>('0' + static_cast<int>(opts.objective));
  if (opts.device != nullptr) {
    // Content fingerprint, not identity: two devices with the same shape but
    // different calibration produce different keys; relabeling (name only)
    // does not fragment the cache.
    k += "|dev=";
    k += std::to_string(opts.device->fingerprint());
  }
  return k;
}

bool ResultCache::cacheable(const MapperEngine& engine,
                            const MapOptions& opts) {
  // A raw target graph or a directly-injected SabreOptions::device pointer
  // cannot be fingerprinted; the supported calibrated path is
  // MapOptions::device, whose content hash joins the key.
  return engine.deterministic() && opts.target == nullptr &&
         opts.sabre.device == nullptr;
}

ResultCache::Shard& ResultCache::shard_for(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const MapResult> ResultCache::get(const std::string& key) {
  if (capacity_ == 0) return nullptr;
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(key);
  if (it == s.index.end()) {
    ++s.misses;
    return nullptr;
  }
  if (ttl_seconds_ > 0.0) {
    // Lazy expiry: age is checked on access, so a stale entry costs nothing
    // until someone asks for it — and then costs exactly one re-map.
    const double age = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() -
                           it->second->inserted)
                           .count();
    if (age > ttl_seconds_) {
      s.lru.erase(it->second);
      s.index.erase(it);
      ++s.expired;
      ++s.misses;
      return nullptr;
    }
  }
  ++s.hits;
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // promote to MRU
  return it->second->value;
}

void ResultCache::put(const std::string& key,
                      std::shared_ptr<const MapResult> value) {
  if (capacity_ == 0 || value == nullptr) return;
  const auto now = std::chrono::steady_clock::now();
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    it->second->value = std::move(value);
    it->second->inserted = now;  // a refresh restarts the TTL clock
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  s.lru.push_front(Entry{key, std::move(value), now});
  s.index.emplace(key, s.lru.begin());
  ++s.insertions;
  while (s.lru.size() > s.capacity) {
    s.index.erase(s.lru.back().key);
    s.lru.pop_back();
    ++s.evictions;
  }
}

void ResultCache::clear() {
  for (auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->mutex);
    sp->lru.clear();
    sp->index.clear();
  }
}

ResultCache::Stats ResultCache::stats() const {
  Stats total;
  total.capacity = capacity_;
  total.load_quarantined = load_quarantined_.load(std::memory_order_relaxed);
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->mutex);
    total.hits += sp->hits;
    total.misses += sp->misses;
    total.insertions += sp->insertions;
    total.evictions += sp->evictions;
    total.expired += sp->expired;
    total.entries += sp->lru.size();
  }
  return total;
}

// ------------------------------------------------------------ persistence --
// Line-oriented text format, one record per resident entry. Every
// variable-length field is length-prefixed (keys and QASM bodies may contain
// anything), and the MapResult payload rides as to_qasm(mapped) — %.17g
// angles make that round trip exact, so a reloaded entry is bit-identical
// to the one saved. Cached entries are stored pre-normalized (requested_n ==
// n, zero timings, cache_hit), so only the identity fields, the graph, the
// check report and the circuit need to survive.

namespace {

// Version 2 added the per-entry "fid" record (MapResult::log10_fidelity).
// A v1 file fails the magic check and the service starts cold — acceptable
// for a cache, never silently wrong.
constexpr const char* kCacheMagic = "qftmap-cache 2";

void write_blob(std::ostream& out, const char* tag, const std::string& bytes) {
  out << tag << ' ' << bytes.size() << '\n' << bytes << '\n';
}

bool read_line(std::istream& in, std::string& line, std::string& error,
               const char* what) {
  if (!std::getline(in, line)) {
    error = std::string("cache load: truncated stream (expected ") + what +
            ")";
    return false;
  }
  return true;
}

bool read_blob(std::istream& in, std::size_t len, std::string& bytes,
               std::string& error, const char* what) {
  bytes.resize(len);
  if (len > 0 && !in.read(&bytes[0], static_cast<std::streamsize>(len))) {
    error = std::string("cache load: truncated ") + what + " payload";
    return false;
  }
  if (in.get() != '\n') {
    error = std::string("cache load: missing newline after ") + what;
    return false;
  }
  return true;
}

}  // namespace

bool ResultCache::save(std::ostream& out) const {
  out << kCacheMagic << '\n';
  for (const auto& sp : shards_) {
    // Snapshot under the lock (shared_ptr copies), serialize outside it —
    // QASM emission of a large circuit must not stall concurrent workers.
    std::vector<std::pair<std::string, std::shared_ptr<const MapResult>>>
        entries;
    {
      std::lock_guard<std::mutex> lock(sp->mutex);
      entries.reserve(sp->lru.size());
      // LRU-first: load() re-inserts in file order, so the last entry
      // written (the MRU) becomes the MRU again.
      for (auto it = sp->lru.rbegin(); it != sp->lru.rend(); ++it) {
        entries.emplace_back(it->key, it->value);
      }
    }
    for (const auto& [key, result] : entries) {
      const MapResult& r = *result;
      if (QFTO_FAULT_POINT("cache.save.write")) {
        // Injected mid-save stream failure: the half-written output must be
        // reported failed, and save_file must leave the target untouched.
        out.setstate(std::ios::failbit);
        return false;
      }
      out << "entry\n";
      write_blob(out, "key", key);
      write_blob(out, "engine", r.engine);
      out << "n " << r.n << '\n';
      out << "graph " << r.graph.num_qubits() << ' ' << r.graph.num_edges()
          << ' ' << r.graph.name().size() << '\n'
          << r.graph.name() << '\n';
      for (std::int32_t a = 0; a < r.graph.num_qubits(); ++a) {
        for (const PhysicalQubit b : r.graph.neighbors(a)) {
          if (b <= a) continue;  // undirected: emit each edge once
          const auto type = r.graph.link_type(a, b);
          out << "e " << a << ' ' << b << ' '
              << static_cast<int>(type.value_or(LinkType::kStandard)) << '\n';
        }
      }
      out << "check " << (r.check.ok ? 1 : 0) << ' ' << r.check.depth << ' '
          << r.check.counts.h << ' ' << r.check.counts.x << ' '
          << r.check.counts.rz << ' ' << r.check.counts.cphase << ' '
          << r.check.counts.swap << ' ' << r.check.counts.cnot << ' '
          << r.check.error.size() << '\n'
          << r.check.error << '\n';
      {
        char fid[40];
        std::snprintf(fid, sizeof(fid), "%.17g", r.log10_fidelity);
        out << "fid " << fid << '\n';
      }
      write_blob(out, "qasm", to_qasm(r.mapped));
      out << "end\n";
    }
  }
  return static_cast<bool>(out);
}

namespace {

/// One parsed record, ready for put(). On failure `reason` says why; the
/// stream is left wherever parsing stopped and the caller resynchronizes.
struct ParsedCacheEntry {
  std::string key;
  std::shared_ptr<MapResult> result;
};

bool parse_cache_entry(std::istream& in, ParsedCacheEntry& out,
                       std::string& reason) {
  std::string scratch, line;
  const auto fail = [&](const std::string& what) {
    reason = what;
    return false;
  };
  std::string err;
  std::size_t len = 0;
  std::string key, engine;
  // key
  if (!read_line(in, line, err, "key")) return fail(err);
  if (std::sscanf(line.c_str(), "key %zu", &len) != 1) {
    return fail("bad key header");
  }
  if (!read_blob(in, len, key, err, "key")) return fail(err);
  // engine
  if (!read_line(in, line, err, "engine")) return fail(err);
  if (std::sscanf(line.c_str(), "engine %zu", &len) != 1) {
    return fail("bad engine header");
  }
  if (!read_blob(in, len, engine, err, "engine")) return fail(err);
  // n
  long long n = 0;
  if (!read_line(in, line, err, "n")) return fail(err);
  if (std::sscanf(line.c_str(), "n %lld", &n) != 1 || n < 1 ||
      n > 16'777'216) {
    return fail("bad n");
  }
  // graph
  long long qubits = 0, edges = 0;
  std::size_t name_len = 0;
  if (!read_line(in, line, err, "graph")) return fail(err);
  if (std::sscanf(line.c_str(), "graph %lld %lld %zu", &qubits, &edges,
                  &name_len) != 3 ||
      qubits < 0 || qubits > 16'777'216 || edges < 0) {
    return fail("bad graph header");
  }
  std::string graph_name;
  if (!read_blob(in, name_len, graph_name, err, "graph name")) {
    return fail(err);
  }
  CouplingGraph graph(graph_name, static_cast<std::int32_t>(qubits));
  for (long long i = 0; i < edges; ++i) {
    long long a = 0, b = 0;
    int type = 0;
    if (!read_line(in, line, err, "edge")) return fail(err);
    if (std::sscanf(line.c_str(), "e %lld %lld %d", &a, &b, &type) != 3 ||
        a < 0 || b < 0 || a >= qubits || b >= qubits || a == b ||
        type < 0 || static_cast<std::size_t>(type) >= kLinkTypeCount ||
        graph.adjacent(static_cast<PhysicalQubit>(a),
                       static_cast<PhysicalQubit>(b))) {
      return fail("bad edge");
    }
    graph.add_edge(static_cast<PhysicalQubit>(a),
                   static_cast<PhysicalQubit>(b),
                   static_cast<LinkType>(type));
  }
  // check report
  int check_ok = 0;
  long long depth = 0, h = 0, x = 0, rz = 0, cphase = 0, swap = 0, cnot = 0;
  std::size_t err_len = 0;
  if (!read_line(in, line, err, "check")) return fail(err);
  if (std::sscanf(line.c_str(),
                  "check %d %lld %lld %lld %lld %lld %lld %lld %zu",
                  &check_ok, &depth, &h, &x, &rz, &cphase, &swap, &cnot,
                  &err_len) != 9) {
    return fail("bad check header");
  }
  std::string check_error;
  if (!read_blob(in, err_len, check_error, err, "check error")) {
    return fail(err);
  }
  // fidelity estimate
  double fid = 0.0;
  if (!read_line(in, line, err, "fid")) return fail(err);
  if (std::sscanf(line.c_str(), "fid %lf", &fid) != 1 || fid > 0.0 ||
      std::isnan(fid)) {
    return fail("bad fid");
  }
  // qasm payload
  if (!read_line(in, line, err, "qasm")) return fail(err);
  if (std::sscanf(line.c_str(), "qasm %zu", &len) != 1) {
    return fail("bad qasm header");
  }
  if (!read_blob(in, len, scratch, err, "qasm")) return fail(err);
  if (!read_line(in, line, err, "end")) return fail(err);
  if (line != "end") return fail("expected \"end\"");

  auto result = std::make_shared<MapResult>();
  result->engine = std::move(engine);
  result->requested_n = static_cast<std::int32_t>(n);
  result->n = static_cast<std::int32_t>(n);
  try {
    result->mapped = mapped_from_qasm(scratch);
  } catch (const std::invalid_argument& e) {
    return fail(std::string("bad qasm payload: ") + e.what());
  }
  result->graph = std::move(graph);
  result->check.ok = check_ok != 0;
  result->check.error = std::move(check_error);
  result->check.depth = static_cast<Cycle>(depth);
  result->check.counts.h = h;
  result->check.counts.x = x;
  result->check.counts.rz = rz;
  result->check.counts.cphase = cphase;
  result->check.counts.swap = swap;
  result->check.counts.cnot = cnot;
  result->log10_fidelity = fid;
  result->timings = MapTimings{};
  result->cache_hit = true;
  out.key = std::move(key);
  out.result = std::move(result);
  return true;
}

}  // namespace

bool ResultCache::load(std::istream& in, std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  std::string line;
  if (QFTO_FAULT_POINT("cache.load.fail")) {
    return fail("cache load: injected read failure");
  }
  if (!std::getline(in, line) || line != kCacheMagic) {
    return fail("cache load: bad magic (not a qftmap cache file?)");
  }
  // Quarantine discipline: a record that fails to parse costs exactly that
  // record. We count it, remember the first reason for the error summary,
  // and resynchronize at the next "entry" marker — blob payloads can contain
  // anything, so resync is best-effort, but a wrong resync point just
  // quarantines one more record, never crashes the load.
  std::uint64_t quarantined = 0;
  std::string first_reason;
  const auto quarantine = [&](const std::string& reason) {
    ++quarantined;
    if (first_reason.empty()) first_reason = reason;
    while (std::getline(in, line)) {
      if (line == "entry") return true;  // resynced: parse from here
    }
    return false;  // EOF while scanning
  };
  bool at_entry = false;  // "entry" already consumed by a resync scan
  for (;;) {
    if (!at_entry) {
      if (!std::getline(in, line)) break;
      if (line.empty()) continue;
      if (line != "entry") {
        if (!quarantine("expected \"entry\", got \"" + line + "\"")) break;
        at_entry = true;
        continue;
      }
    }
    at_entry = false;
    ParsedCacheEntry entry;
    std::string reason;
    if (parse_cache_entry(in, entry, reason)) {
      put(entry.key, std::move(entry.result));
    } else {
      at_entry = quarantine(reason);
      if (!at_entry && in.eof()) break;
    }
  }
  if (quarantined > 0) {
    load_quarantined_.fetch_add(quarantined, std::memory_order_relaxed);
    if (error != nullptr) {
      *error = "cache load: quarantined " + std::to_string(quarantined) +
               " malformed record(s) (first: " + first_reason + ")";
    }
  }
  return true;
}

bool ResultCache::save_file(const std::string& path, std::string* error) const {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  // Temp file beside the target (same directory, so rename() is atomic and
  // never crosses a filesystem), then fsync + rename: a crash or SIGKILL at
  // any instant leaves either the complete old file or the complete new one.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return fail("cache save: cannot open " + tmp);
    if (!save(out)) {
      out.close();
      std::remove(tmp.c_str());
      return fail("cache save: write to " + tmp + " failed");
    }
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return fail("cache save: flush of " + tmp + " failed");
    }
  }
  // Push the bytes to stable storage before the rename publishes them — a
  // rename that beats the data to disk could publish an empty file across a
  // power loss.
  const int fd = ::open(tmp.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
  if (QFTO_FAULT_POINT("cache.save.rename")) {
    std::remove(tmp.c_str());
    return fail("cache save: injected rename failure");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why = std::strerror(errno);
    std::remove(tmp.c_str());
    return fail("cache save: rename to " + path + " failed: " + why);
  }
  return true;
}

}  // namespace qfto
