#include "service/result_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <istream>
#include <ostream>
#include <sstream>

#include "qasm/qasm.hpp"

namespace qfto {

namespace {

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

ResultCache::ResultCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity) {
  shards = std::max<std::size_t>(1, std::min(shards, std::max<std::size_t>(
                                                         1, capacity)));
  shards_.reserve(shards);
  // Exact split of the global budget: quotas sum to `capacity`, never more.
  const std::size_t base = capacity / shards;
  const std::size_t extra = capacity % shards;
  for (std::size_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = base + (i < extra ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

std::string ResultCache::key(const std::string& engine, std::int32_t native_n,
                             const MapOptions& opts, const Circuit* circuit) {
  std::string k;
  k.reserve(engine.size() + 160);
  k += engine;
  k += '|';
  k += std::to_string(native_n);
  if (circuit != nullptr) {
    // Content fingerprint + gate count: distinct circuits get distinct keys,
    // and "qft" (no |circ= segment) can never alias a general request.
    k += "|circ=";
    k += std::to_string(circuit->fingerprint());
    k += ':';
    k += std::to_string(circuit->size());
  }
  k += "|ie=";
  k += opts.strict_ie ? '1' : '0';
  k += "|po=";
  k += std::to_string(opts.lattice_phase_offset);
  k += "|tus=";
  k += opts.transversal_unit_swap ? '1' : '0';
  k += "|sabre=";
  k += std::to_string(opts.sabre.seed);
  k += ',';
  k += std::to_string(opts.sabre.trials);
  k += ',';
  k += std::to_string(opts.sabre.bidirectional_passes);
  k += ',';
  append_double(k, opts.sabre.extended_weight);
  k += ',';
  k += std::to_string(opts.sabre.extended_size);
  k += ',';
  append_double(k, opts.sabre.decay_delta);
  k += ',';
  k += std::to_string(opts.sabre.decay_reset);
  k += ',';
  k += opts.sabre.use_relaxed_dag ? '1' : '0';
  k += "|satmap=";
  append_double(k, opts.satmap.time_budget_seconds);
  k += ',';
  k += std::to_string(opts.satmap.max_layers);
  k += ',';
  k += opts.satmap.minimize_swaps ? '1' : '0';
  k += ',';
  // A stale hit across solver backends or search drivers would silently
  // return wrong-backend results; both knobs shape the (non-deterministic
  // TLE-vs-solved) outcome, so they fragment the key even though SATMAP
  // itself is never cached today.
  k += opts.satmap.solver;
  k += ',';
  k += opts.satmap.incremental ? '1' : '0';
  k += "|verify=";
  k += opts.verify ? '1' : '0';
  k += opts.incremental_verify ? '1' : '0';
  return k;
}

bool ResultCache::cacheable(const MapperEngine& engine,
                            const MapOptions& opts) {
  return engine.deterministic() && opts.target == nullptr;
}

ResultCache::Shard& ResultCache::shard_for(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const MapResult> ResultCache::get(const std::string& key) {
  if (capacity_ == 0) return nullptr;
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(key);
  if (it == s.index.end()) {
    ++s.misses;
    return nullptr;
  }
  ++s.hits;
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // promote to MRU
  return it->second->second;
}

void ResultCache::put(const std::string& key,
                      std::shared_ptr<const MapResult> value) {
  if (capacity_ == 0 || value == nullptr) return;
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    it->second->second = std::move(value);
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  s.lru.emplace_front(key, std::move(value));
  s.index.emplace(key, s.lru.begin());
  ++s.insertions;
  while (s.lru.size() > s.capacity) {
    s.index.erase(s.lru.back().first);
    s.lru.pop_back();
    ++s.evictions;
  }
}

void ResultCache::clear() {
  for (auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->mutex);
    sp->lru.clear();
    sp->index.clear();
  }
}

ResultCache::Stats ResultCache::stats() const {
  Stats total;
  total.capacity = capacity_;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->mutex);
    total.hits += sp->hits;
    total.misses += sp->misses;
    total.insertions += sp->insertions;
    total.evictions += sp->evictions;
    total.entries += sp->lru.size();
  }
  return total;
}

// ------------------------------------------------------------ persistence --
// Line-oriented text format, one record per resident entry. Every
// variable-length field is length-prefixed (keys and QASM bodies may contain
// anything), and the MapResult payload rides as to_qasm(mapped) — %.17g
// angles make that round trip exact, so a reloaded entry is bit-identical
// to the one saved. Cached entries are stored pre-normalized (requested_n ==
// n, zero timings, cache_hit), so only the identity fields, the graph, the
// check report and the circuit need to survive.

namespace {

constexpr const char* kCacheMagic = "qftmap-cache 1";

void write_blob(std::ostream& out, const char* tag, const std::string& bytes) {
  out << tag << ' ' << bytes.size() << '\n' << bytes << '\n';
}

bool read_line(std::istream& in, std::string& line, std::string& error,
               const char* what) {
  if (!std::getline(in, line)) {
    error = std::string("cache load: truncated stream (expected ") + what +
            ")";
    return false;
  }
  return true;
}

bool read_blob(std::istream& in, std::size_t len, std::string& bytes,
               std::string& error, const char* what) {
  bytes.resize(len);
  if (len > 0 && !in.read(&bytes[0], static_cast<std::streamsize>(len))) {
    error = std::string("cache load: truncated ") + what + " payload";
    return false;
  }
  if (in.get() != '\n') {
    error = std::string("cache load: missing newline after ") + what;
    return false;
  }
  return true;
}

}  // namespace

bool ResultCache::save(std::ostream& out) const {
  out << kCacheMagic << '\n';
  for (const auto& sp : shards_) {
    // Snapshot under the lock (shared_ptr copies), serialize outside it —
    // QASM emission of a large circuit must not stall concurrent workers.
    std::vector<std::pair<std::string, std::shared_ptr<const MapResult>>>
        entries;
    {
      std::lock_guard<std::mutex> lock(sp->mutex);
      entries.reserve(sp->lru.size());
      // LRU-first: load() re-inserts in file order, so the last entry
      // written (the MRU) becomes the MRU again.
      for (auto it = sp->lru.rbegin(); it != sp->lru.rend(); ++it) {
        entries.push_back(*it);
      }
    }
    for (const auto& [key, result] : entries) {
      const MapResult& r = *result;
      out << "entry\n";
      write_blob(out, "key", key);
      write_blob(out, "engine", r.engine);
      out << "n " << r.n << '\n';
      out << "graph " << r.graph.num_qubits() << ' ' << r.graph.num_edges()
          << ' ' << r.graph.name().size() << '\n'
          << r.graph.name() << '\n';
      for (std::int32_t a = 0; a < r.graph.num_qubits(); ++a) {
        for (const PhysicalQubit b : r.graph.neighbors(a)) {
          if (b <= a) continue;  // undirected: emit each edge once
          const auto type = r.graph.link_type(a, b);
          out << "e " << a << ' ' << b << ' '
              << static_cast<int>(type.value_or(LinkType::kStandard)) << '\n';
        }
      }
      out << "check " << (r.check.ok ? 1 : 0) << ' ' << r.check.depth << ' '
          << r.check.counts.h << ' ' << r.check.counts.x << ' '
          << r.check.counts.rz << ' ' << r.check.counts.cphase << ' '
          << r.check.counts.swap << ' ' << r.check.counts.cnot << ' '
          << r.check.error.size() << '\n'
          << r.check.error << '\n';
      write_blob(out, "qasm", to_qasm(r.mapped));
      out << "end\n";
    }
  }
  return static_cast<bool>(out);
}

bool ResultCache::load(std::istream& in, std::string* error) {
  std::string scratch;
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  std::string line;
  if (!std::getline(in, line) || line != kCacheMagic) {
    return fail("cache load: bad magic (not a qftmap cache file?)");
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line != "entry") return fail("cache load: expected \"entry\"");

    std::string err;
    std::size_t len = 0;
    std::string key, engine;
    // key
    if (!read_line(in, line, err, "key")) return fail(err);
    if (std::sscanf(line.c_str(), "key %zu", &len) != 1) {
      return fail("cache load: bad key header");
    }
    if (!read_blob(in, len, key, err, "key")) return fail(err);
    // engine
    if (!read_line(in, line, err, "engine")) return fail(err);
    if (std::sscanf(line.c_str(), "engine %zu", &len) != 1) {
      return fail("cache load: bad engine header");
    }
    if (!read_blob(in, len, engine, err, "engine")) return fail(err);
    // n
    long long n = 0;
    if (!read_line(in, line, err, "n")) return fail(err);
    if (std::sscanf(line.c_str(), "n %lld", &n) != 1 || n < 1 ||
        n > 16'777'216) {
      return fail("cache load: bad n");
    }
    // graph
    long long qubits = 0, edges = 0;
    std::size_t name_len = 0;
    if (!read_line(in, line, err, "graph")) return fail(err);
    if (std::sscanf(line.c_str(), "graph %lld %lld %zu", &qubits, &edges,
                    &name_len) != 3 ||
        qubits < 0 || qubits > 16'777'216 || edges < 0) {
      return fail("cache load: bad graph header");
    }
    std::string graph_name;
    if (!read_blob(in, name_len, graph_name, err, "graph name")) {
      return fail(err);
    }
    CouplingGraph graph(graph_name, static_cast<std::int32_t>(qubits));
    for (long long i = 0; i < edges; ++i) {
      long long a = 0, b = 0;
      int type = 0;
      if (!read_line(in, line, err, "edge")) return fail(err);
      if (std::sscanf(line.c_str(), "e %lld %lld %d", &a, &b, &type) != 3 ||
          a < 0 || b < 0 || a >= qubits || b >= qubits || a == b ||
          type < 0 || static_cast<std::size_t>(type) >= kLinkTypeCount ||
          graph.adjacent(static_cast<PhysicalQubit>(a),
                         static_cast<PhysicalQubit>(b))) {
        return fail("cache load: bad edge");
      }
      graph.add_edge(static_cast<PhysicalQubit>(a),
                     static_cast<PhysicalQubit>(b),
                     static_cast<LinkType>(type));
    }
    // check report
    int check_ok = 0;
    long long depth = 0, h = 0, x = 0, rz = 0, cphase = 0, swap = 0,
              cnot = 0;
    std::size_t err_len = 0;
    if (!read_line(in, line, err, "check")) return fail(err);
    if (std::sscanf(line.c_str(),
                    "check %d %lld %lld %lld %lld %lld %lld %lld %zu",
                    &check_ok, &depth, &h, &x, &rz, &cphase, &swap, &cnot,
                    &err_len) != 9) {
      return fail("cache load: bad check header");
    }
    std::string check_error;
    if (!read_blob(in, err_len, check_error, err, "check error")) {
      return fail(err);
    }
    // qasm payload
    if (!read_line(in, line, err, "qasm")) return fail(err);
    if (std::sscanf(line.c_str(), "qasm %zu", &len) != 1) {
      return fail("cache load: bad qasm header");
    }
    if (!read_blob(in, len, scratch, err, "qasm")) return fail(err);
    if (!read_line(in, line, err, "end")) return fail(err);
    if (line != "end") return fail("cache load: expected \"end\"");

    auto result = std::make_shared<MapResult>();
    result->engine = std::move(engine);
    result->requested_n = static_cast<std::int32_t>(n);
    result->n = static_cast<std::int32_t>(n);
    try {
      result->mapped = mapped_from_qasm(scratch);
    } catch (const std::invalid_argument& e) {
      return fail(std::string("cache load: bad qasm payload: ") + e.what());
    }
    result->graph = std::move(graph);
    result->check.ok = check_ok != 0;
    result->check.error = std::move(check_error);
    result->check.depth = static_cast<Cycle>(depth);
    result->check.counts.h = h;
    result->check.counts.x = x;
    result->check.counts.rz = rz;
    result->check.counts.cphase = cphase;
    result->check.counts.swap = swap;
    result->check.counts.cnot = cnot;
    result->timings = MapTimings{};
    result->cache_hit = true;
    put(key, std::move(result));
  }
  return true;
}

}  // namespace qfto
