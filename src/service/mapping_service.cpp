#include "service/mapping_service.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/fault.hpp"
#include "common/types.hpp"

namespace qfto {

namespace detail {

struct JobState {
  // Immutable after submit().
  BatchRequest request;
  std::int32_t priority = 0;
  std::int64_t sequence = 0;
  bool use_cache = true;
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  std::chrono::steady_clock::time_point submitted{};

  /// The cooperative token the pipeline and SATMAP poll; flipped by
  /// JobHandle::cancel(), by service shutdown, and by the watchdog at the
  /// job's deadline.
  std::atomic<bool> cancel{false};

  std::mutex mutex;
  std::condition_variable cv;
  JobStatus status = JobStatus::kQueued;
  std::string error;
  std::shared_ptr<const MapResult> result;
  double queue_seconds = 0.0;
  std::int64_t dispatch_index = -1;
};

/// Per-worker-thread identity. The watchdog flips `wedged` when it gives up
/// on the thread; the worker checks it after every job and exits if a
/// replacement has taken over its pool seat.
struct WorkerSlot {
  std::atomic<bool> wedged{false};
  /// Set by the worker as its very last act. The destructor only join()s
  /// threads that have actually finished — blocking on a thread still wedged
  /// inside an engine would defeat the watchdog's detach path.
  std::atomic<bool> exited{false};
};

/// A job currently on a worker, plus the watchdog's enforcement state.
struct RunningJob {
  std::shared_ptr<JobState> job;
  std::shared_ptr<WorkerSlot> slot;
  bool watchdog_cancelled = false;
  std::chrono::steady_clock::time_point cancel_fired_at{};
};

/// Everything worker threads touch, behind one shared_ptr: a wedged worker
/// detached by the watchdog may finish long after ~MappingService, and its
/// post-job bookkeeping must land on live memory.
struct ServiceCore {
  ServiceCore(const MapperPipeline* p, std::size_t cache_capacity,
              std::size_t cache_shards, double cache_ttl, double grace)
      : pipeline(p),
        cache(cache_capacity, cache_shards, cache_ttl),
        wedge_grace_seconds(grace),
        queue(&ServiceCore::pops_later) {}

  /// Max-heap order: higher priority first, FIFO within a priority level.
  static bool pops_later(const std::shared_ptr<JobState>& a,
                         const std::shared_ptr<JobState>& b) {
    if (a->priority != b->priority) return a->priority < b->priority;
    return a->sequence > b->sequence;
  }

  const MapperPipeline* pipeline;
  ResultCache cache;
  const double wedge_grace_seconds;

  std::mutex queue_mutex;
  std::condition_variable queue_cv;     // wakes workers
  std::condition_variable watchdog_cv;  // wakes the watchdog
  std::priority_queue<std::shared_ptr<JobState>,
                      std::vector<std::shared_ptr<JobState>>,
                      bool (*)(const std::shared_ptr<JobState>&,
                               const std::shared_ptr<JobState>&)>
      queue;
  bool stopping = false;
  bool watchdog_stop = false;
  std::int64_t next_sequence = 0;
  std::atomic<std::int64_t> next_dispatch{0};
  /// Jobs on a worker (guarded by queue_mutex); the destructor flips their
  /// cancel tokens so shutdown does not wait out solver budgets, and the
  /// watchdog removes entries it hard-retires.
  std::vector<RunningJob> running;

  // Stats (guarded by queue_mutex).
  std::uint64_t watchdog_fired = 0;
  std::uint64_t jobs_wedged = 0;
  std::uint64_t workers_replaced = 0;
};

namespace {

bool terminal(JobStatus s) {
  return s != JobStatus::kQueued && s != JobStatus::kRunning;
}

double seconds_since(std::chrono::steady_clock::time_point from,
                     std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

JobResult snapshot_locked(const JobState& s) {
  JobResult r;
  r.status = s.status;
  r.error = s.error;
  r.result = s.result;
  r.queue_seconds = s.queue_seconds;
  r.dispatch_index = s.dispatch_index;
  return r;
}

/// Terminal transition + waiter wake-up. First writer wins: the watchdog's
/// hard kExpired and the worker's own late completion race on wedged jobs,
/// and whichever loses must not overwrite the published outcome (waiters may
/// already have read it). Returns false when the job was already terminal.
bool finish(JobState& s, JobStatus status, std::string error,
            std::shared_ptr<const MapResult> result) {
  std::lock_guard<std::mutex> lock(s.mutex);
  if (terminal(s.status)) return false;
  s.status = status;
  s.error = std::move(error);
  s.result = std::move(result);
  s.cv.notify_all();
  return true;
}

/// Retires a job that never reached a worker (handle cancel, shutdown
/// orphan, submit-after-stop). Every such path must report the same way:
/// kCancelled, a "cancelled before start..." error, and an honest
/// queue_seconds — a job that waited 2 s before shutdown orphaned it did
/// queue for 2 s, and monitoring that reads 0.0 there under-counts queue
/// pressure exactly when it matters. Caller holds s.mutex with
/// s.status == kQueued.
void retire_queued_locked(JobState& s, const char* reason) {
  s.status = JobStatus::kCancelled;
  s.error = reason;
  s.queue_seconds =
      seconds_since(s.submitted, std::chrono::steady_clock::now());
  s.cv.notify_all();
}

/// Locking wrapper: retire iff still queued; running/terminal jobs only get
/// the cancel token (running jobs cancel cooperatively, terminal no-op).
void retire_queued(JobState& s, const char* reason) {
  s.cancel.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.status == JobStatus::kQueued) retire_queued_locked(s, reason);
}

/// Runs one job to a terminal status. Static on the core so detached
/// wedged workers never touch MappingService members.
void process(ServiceCore& core, const std::shared_ptr<JobState>& job) {
  const auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    if (terminal(job->status)) return;  // cancelled while queued
    job->queue_seconds = seconds_since(job->submitted, now);
    if (job->has_deadline && now >= job->deadline) {
      job->status = JobStatus::kExpired;
      job->error = "deadline exceeded before start (queued " +
                   std::to_string(job->queue_seconds) + " s)";
      job->cv.notify_all();
      return;
    }
    job->status = JobStatus::kRunning;
    job->dispatch_index = core.next_dispatch.fetch_add(1);
  }

  const BatchRequest& req = job->request;
  if (req.circuit != nullptr && req.n != req.circuit->num_qubits()) {
    finish(*job, JobStatus::kFailed,
           "BatchRequest: n does not match the supplied circuit", nullptr);
    return;
  }

  // Cache probe: deterministic engine, no caller-owned target, and n inside
  // run()'s accepted range — native_size on an unvalidated huge n could
  // overflow int32 before run() gets to reject it, so out-of-range sizes
  // skip the probe and fall through for the real error. General-circuit
  // requests fold their content fingerprint into the key.
  std::string key;
  if (job->use_cache && core.cache.capacity() > 0 && req.n >= 1 &&
      req.n <= 16'777'216) {
    if (const MapperEngine* engine = core.pipeline->find(req.engine)) {
      if (ResultCache::cacheable(*engine, req.options)) {
        key = ResultCache::key(req.engine, engine->native_size(req.n),
                               req.options, req.circuit.get());
        if (auto cached = core.cache.get(key)) {
          // Entries are stored pre-normalized (zero timings, cache_hit set,
          // requested_n = native n), so the common exact-native hit shares
          // the immutable cached object with no copy at all — the hit path
          // must not pay a deep copy of a million-gate circuit. Only a
          // snapped request needs a copy to echo its own requested size.
          std::shared_ptr<const MapResult> served;
          if (cached->requested_n == req.n) {
            served = std::move(cached);
          } else {
            auto snapped = std::make_shared<MapResult>(*cached);
            snapped->requested_n = req.n;
            served = std::move(snapped);
          }
          finish(*job, JobStatus::kDone, {}, std::move(served));
          return;
        }
      }
    }
  }

  MapOptions run_opts = req.options;
  run_opts.cancel = &job->cancel;
  if (job->has_deadline) {
    run_opts.deadline_seconds = seconds_since(
        std::chrono::steady_clock::now(), job->deadline);
    if (run_opts.deadline_seconds <= 0.0) {
      finish(*job, JobStatus::kExpired, "deadline exceeded before start",
             nullptr);
      return;
    }
  }

  // Reports "the job's deadline has passed" regardless of which enforcement
  // path noticed first — the engine's own budget clamp, the cooperative
  // token the watchdog fired, or a plain exception that raced the deadline.
  // Callers asked for a deadline outcome and must get kExpired, not an
  // incidental kCancelled/kFailed.
  const auto past_deadline = [&job] {
    return job->has_deadline &&
           std::chrono::steady_clock::now() >= job->deadline;
  };

  try {
    if (QFTO_FAULT_POINT("service.job.throw")) {
      throw std::runtime_error("injected fault: service.job.throw");
    }
    if (QFTO_FAULT_POINT("service.job.throw_nonstd")) {
      // Deliberately not derived from std::exception: exercises the worker's
      // catch (...) path end to end.
      throw 42;
    }
    MapResult result =
        req.circuit != nullptr
            ? core.pipeline->run_circuit(req.engine, *req.circuit, run_opts)
            : core.pipeline->run(req.engine, req.n, run_opts);
    result.cache_hit = false;
    // Allocated non-const (then viewed as const) so a sole-owner consumer
    // like map_qft_batch may legally move the payload out.
    std::shared_ptr<const MapResult> shared =
        std::make_shared<MapResult>(std::move(result));
    if (!key.empty()) {
      // One normalization copy per insertion buys copy-free hits forever.
      auto normalized = std::make_shared<MapResult>(*shared);
      normalized->requested_n = normalized->n;
      normalized->timings = MapTimings{};
      normalized->cache_hit = true;
      core.cache.put(key, std::move(normalized));
    }
    finish(*job, JobStatus::kDone, {}, std::move(shared));
  } catch (const MapCancelled& e) {
    if (e.deadline_expired() || past_deadline()) {
      finish(*job, JobStatus::kExpired,
             std::string("deadline exceeded: ") + e.what(), nullptr);
    } else {
      finish(*job, JobStatus::kCancelled, e.what(), nullptr);
    }
  } catch (const std::exception& e) {
    // A SATMAP TLE caused by the deadline clamp surfaces as a runtime_error;
    // if the job's deadline has meanwhile passed, report it as the deadline
    // outcome the caller asked for.
    if (past_deadline()) {
      finish(*job, JobStatus::kExpired,
             std::string("deadline exceeded: ") + e.what(), nullptr);
    } else {
      finish(*job, JobStatus::kFailed, e.what(), nullptr);
    }
  } catch (...) {
    if (past_deadline()) {
      finish(*job, JobStatus::kExpired, "deadline exceeded: unknown error",
             nullptr);
    } else {
      finish(*job, JobStatus::kFailed, "unknown error", nullptr);
    }
  }
}

void worker_loop_impl(const std::shared_ptr<ServiceCore>& core,
                      const std::shared_ptr<WorkerSlot>& slot) {
  for (;;) {
    std::shared_ptr<JobState> job;
    {
      std::unique_lock<std::mutex> lock(core->queue_mutex);
      core->queue_cv.wait(lock,
                          [&] { return core->stopping || !core->queue.empty(); });
      if (core->queue.empty()) return;  // stopping and drained
      job = core->queue.top();
      core->queue.pop();
      if (core->stopping) job->cancel.store(true, std::memory_order_relaxed);
      RunningJob entry;
      entry.job = job;
      entry.slot = slot;
      core->running.push_back(std::move(entry));
      if (job->has_deadline) core->watchdog_cv.notify_one();
    }
    process(*core, job);
    {
      std::lock_guard<std::mutex> lock(core->queue_mutex);
      for (auto it = core->running.begin(); it != core->running.end(); ++it) {
        if (it->job.get() == job.get() && it->slot.get() == slot.get()) {
          core->running.erase(it);
          break;
        }
      }
    }
    // If the watchdog gave up on this thread mid-job, a replacement already
    // holds its pool seat — exit instead of doubling capacity.
    if (slot->wedged.load(std::memory_order_relaxed)) return;
  }
}

void worker_loop(const std::shared_ptr<ServiceCore>& core,
                 const std::shared_ptr<WorkerSlot>& slot) {
  worker_loop_impl(core, slot);
  slot->exited.store(true, std::memory_order_release);
}

}  // namespace
}  // namespace detail

// ------------------------------------------------------------- JobHandle --

JobStatus JobHandle::status() const {
  require(valid(), "JobHandle::status: empty handle");
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->status;
}

JobResult JobHandle::wait() const {
  require(valid(), "JobHandle::wait: empty handle");
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return detail::terminal(state_->status); });
  return detail::snapshot_locked(*state_);
}

std::optional<JobResult> JobHandle::wait_for(double seconds) const {
  require(valid(), "JobHandle::wait_for: empty handle");
  std::unique_lock<std::mutex> lock(state_->mutex);
  const bool done = state_->cv.wait_for(
      lock, std::chrono::duration<double>(seconds),
      [&] { return detail::terminal(state_->status); });
  if (!done) return std::nullopt;
  return detail::snapshot_locked(*state_);
}

std::optional<JobResult> JobHandle::try_get() const {
  require(valid(), "JobHandle::try_get: empty handle");
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (!detail::terminal(state_->status)) return std::nullopt;
  return detail::snapshot_locked(*state_);
}

bool JobHandle::cancel() const {
  require(valid(), "JobHandle::cancel: empty handle");
  detail::JobState& s = *state_;
  s.cancel.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(s.mutex);
  if (detail::terminal(s.status)) return false;
  if (s.status == JobStatus::kQueued) {
    // Retire immediately: no worker time is spent and waiters wake now. The
    // worker that eventually pops this entry sees a terminal status and
    // skips it.
    detail::retire_queued_locked(s, "cancelled before start");
    return true;
  }
  // kRunning: the token is set; the pipeline aborts between stages, SATMAP
  // mid-solve.
  return true;
}

// -------------------------------------------------------- MappingService --

MappingService::MappingService(Options options, const MapperPipeline& pipeline) {
  double grace = options.wedge_grace_seconds;
  if (!(grace > 0.0) || !std::isfinite(grace)) grace = 5.0;
  core_ = std::make_shared<detail::ServiceCore>(
      &pipeline, options.cache_capacity, options.cache_shards,
      options.cache_ttl_seconds, grace);
  std::int32_t threads = options.num_threads;
  if (threads <= 0) {
    threads = static_cast<std::int32_t>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  workers_.reserve(threads);
  for (std::int32_t t = 0; t < threads; ++t) {
    auto slot = std::make_shared<detail::WorkerSlot>();
    auto core = core_;
    workers_.emplace_back(
        std::thread([core, slot] { detail::worker_loop(core, slot); }), slot);
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

MappingService::MappingService() : MappingService(Options{}) {}

MappingService::~MappingService() {
  std::vector<std::shared_ptr<detail::JobState>> orphans;
  {
    std::lock_guard<std::mutex> lock(core_->queue_mutex);
    core_->stopping = true;
    while (!core_->queue.empty()) {
      orphans.push_back(core_->queue.top());
      core_->queue.pop();
    }
    // In-flight jobs cancel cooperatively — shutdown must not wait out a
    // SATMAP solver budget; the worker reports them kCancelled itself.
    for (auto& entry : core_->running) {
      entry.job->cancel.store(true, std::memory_order_relaxed);
    }
  }
  core_->queue_cv.notify_all();
  core_->watchdog_cv.notify_all();
  for (auto& job : orphans) {
    detail::retire_queued(*job, "cancelled before start: service shutting down");
  }
  // Join workers with the watchdog still running: a worker wedged past its
  // job's deadline + grace is detached (and removed from workers_) by the
  // watchdog, so shutdown is bounded by the deadline contract rather than by
  // a non-polling engine. Only threads that have signalled exit are joined —
  // grabbing a still-wedged thread here would block exactly where the
  // watchdog's detach is supposed to save us; for those we sleep-poll until
  // the watchdog removes the entry.
  for (;;) {
    std::thread victim;
    bool any_left = false;
    {
      std::lock_guard<std::mutex> lock(workers_mutex_);
      for (auto it = workers_.begin(); it != workers_.end(); ++it) {
        if (!it->first.joinable()) continue;
        any_left = true;
        if (it->second->exited.load(std::memory_order_acquire)) {
          victim = std::move(it->first);
          workers_.erase(it);
          break;
        }
      }
    }
    if (victim.joinable()) {
      victim.join();
      continue;
    }
    if (!any_left) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    std::lock_guard<std::mutex> lock(core_->queue_mutex);
    core_->watchdog_stop = true;
  }
  core_->watchdog_cv.notify_all();
  watchdog_.join();
}

JobHandle MappingService::submit(BatchRequest request) {
  return submit(std::move(request), Submit{});
}

JobHandle MappingService::submit(BatchRequest request, Submit submit) {
  // General-circuit convenience: a request carrying a circuit may leave n
  // unset; the circuit is the size authority.
  if (request.circuit != nullptr && request.n <= 0) {
    request.n = request.circuit->num_qubits();
  }
  auto state = std::make_shared<detail::JobState>();
  state->request = std::move(request);
  state->priority = submit.priority;
  state->use_cache = submit.use_cache;
  state->submitted = std::chrono::steady_clock::now();
  // NaN and +inf mean "no deadline"; finite budgets are capped so the
  // duration_cast below cannot overflow the clock's integer representation
  // (1e9 s ≈ 31 years is already "never" for a mapping job).
  if (submit.deadline_seconds > 0.0 && std::isfinite(submit.deadline_seconds)) {
    state->has_deadline = true;
    const double capped = std::min(submit.deadline_seconds, 1.0e9);
    state->deadline =
        state->submitted + std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(capped));
  }
  if (QFTO_FAULT_POINT("service.queue.reject")) {
    detail::retire_queued(
        *state, "cancelled before start: injected queue admission failure");
    return JobHandle(std::move(state));
  }
  {
    std::lock_guard<std::mutex> lock(core_->queue_mutex);
    if (core_->stopping) {
      detail::retire_queued(*state,
                            "cancelled before start: service shutting down");
      return JobHandle(std::move(state));
    }
    state->sequence = core_->next_sequence++;
    core_->queue.push(state);
  }
  core_->queue_cv.notify_one();
  return JobHandle(std::move(state));
}

void MappingService::watchdog_loop() {
  auto core = core_;
  const auto grace = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(core->wedge_grace_seconds));
  std::unique_lock<std::mutex> lock(core->queue_mutex);
  while (!core->watchdog_stop) {
    const auto now = std::chrono::steady_clock::now();
    auto next = std::chrono::steady_clock::time_point::max();
    bool have_next = false;
    // Pass 1 (under the lock): fire cancel tokens at expired deadlines,
    // collect jobs whose grace has also elapsed, compute the next wake-up.
    std::vector<std::pair<std::shared_ptr<detail::JobState>,
                          std::shared_ptr<detail::WorkerSlot>>>
        wedged;
    for (auto it = core->running.begin(); it != core->running.end();) {
      detail::RunningJob& r = *it;
      if (!r.job->has_deadline) {
        ++it;
        continue;
      }
      if (!r.watchdog_cancelled) {
        if (now >= r.job->deadline) {
          r.job->cancel.store(true, std::memory_order_relaxed);
          r.watchdog_cancelled = true;
          r.cancel_fired_at = now;
          ++core->watchdog_fired;
        } else {
          next = std::min(next, r.job->deadline);
          have_next = true;
          ++it;
          continue;
        }
      }
      const auto retire_at = r.cancel_fired_at + grace;
      if (now >= retire_at) {
        r.slot->wedged.store(true, std::memory_order_relaxed);
        ++core->jobs_wedged;
        wedged.emplace_back(r.job, r.slot);
        it = core->running.erase(it);
      } else {
        next = std::min(next, retire_at);
        have_next = true;
        ++it;
      }
    }
    if (!wedged.empty()) {
      // Pass 2 (lock dropped — finish() takes the job mutex and
      // replace_worker() takes workers_mutex_): hard-retire the jobs and
      // restore pool capacity. During shutdown the detach still happens (so
      // the destructor's join loop is not held hostage) but no replacement
      // is spawned.
      const bool respawn = !core->stopping;
      lock.unlock();
      for (auto& w : wedged) {
        // Replacement first: by the time a waiter wakes from finish(), pool
        // capacity is already restored and workers_replaced counted.
        replace_worker(w.second, respawn);
        detail::finish(
            *w.first, JobStatus::kExpired,
            "deadline exceeded: watchdog retired wedged job (engine ignored "
            "cancel for the full grace period)",
            nullptr);
      }
      lock.lock();
      continue;  // re-scan: the world moved while unlocked
    }
    if (core->watchdog_stop) break;
    if (have_next) {
      core->watchdog_cv.wait_until(lock, next);
    } else {
      core->watchdog_cv.wait(lock);
    }
  }
}

void MappingService::replace_worker(
    const std::shared_ptr<detail::WorkerSlot>& slot, bool respawn) {
  std::lock_guard<std::mutex> lock(workers_mutex_);
  for (auto& w : workers_) {
    if (w.second.get() != slot.get()) continue;
    w.first.detach();
    if (respawn) {
      auto fresh = std::make_shared<detail::WorkerSlot>();
      auto core = core_;
      w.first = std::thread([core, fresh] { detail::worker_loop(core, fresh); });
      w.second = fresh;
      std::lock_guard<std::mutex> qlock(core_->queue_mutex);
      ++core_->workers_replaced;
    } else {
      std::swap(w, workers_.back());
      workers_.pop_back();
    }
    return;
  }
}

std::int32_t MappingService::num_threads() const {
  std::lock_guard<std::mutex> lock(workers_mutex_);
  return static_cast<std::int32_t>(workers_.size());
}

ResultCache::Stats MappingService::cache_stats() const {
  return core_->cache.stats();
}

MappingService::Stats MappingService::stats() const {
  std::lock_guard<std::mutex> lock(core_->queue_mutex);
  Stats s;
  s.watchdog_fired = core_->watchdog_fired;
  s.jobs_wedged = core_->jobs_wedged;
  s.workers_replaced = core_->workers_replaced;
  return s;
}

std::size_t MappingService::queue_depth() const {
  std::lock_guard<std::mutex> lock(core_->queue_mutex);
  return core_->queue.size();
}

std::size_t MappingService::running_count() const {
  std::lock_guard<std::mutex> lock(core_->queue_mutex);
  return core_->running.size();
}

ResultCache& MappingService::cache() { return core_->cache; }

MappingService& MappingService::shared() {
  static MappingService service{Options{}};
  return service;
}

}  // namespace qfto
