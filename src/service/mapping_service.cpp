#include "service/mapping_service.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/types.hpp"

namespace qfto {

namespace detail {

struct JobState {
  // Immutable after submit().
  BatchRequest request;
  std::int32_t priority = 0;
  std::int64_t sequence = 0;
  bool use_cache = true;
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  std::chrono::steady_clock::time_point submitted{};

  /// The cooperative token the pipeline and SATMAP poll; flipped by
  /// JobHandle::cancel() and by service shutdown.
  std::atomic<bool> cancel{false};

  std::mutex mutex;
  std::condition_variable cv;
  JobStatus status = JobStatus::kQueued;
  std::string error;
  std::shared_ptr<const MapResult> result;
  double queue_seconds = 0.0;
  std::int64_t dispatch_index = -1;
};

namespace {

bool terminal(JobStatus s) {
  return s != JobStatus::kQueued && s != JobStatus::kRunning;
}

double seconds_since(std::chrono::steady_clock::time_point from,
                     std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

JobResult snapshot_locked(const JobState& s) {
  JobResult r;
  r.status = s.status;
  r.error = s.error;
  r.result = s.result;
  r.queue_seconds = s.queue_seconds;
  r.dispatch_index = s.dispatch_index;
  return r;
}

/// Terminal transition + waiter wake-up.
void finish(JobState& s, JobStatus status, std::string error,
            std::shared_ptr<const MapResult> result) {
  std::lock_guard<std::mutex> lock(s.mutex);
  s.status = status;
  s.error = std::move(error);
  s.result = std::move(result);
  s.cv.notify_all();
}

/// Retires a job that never reached a worker (handle cancel, shutdown
/// orphan, submit-after-stop). Every such path must report the same way:
/// kCancelled, a "cancelled before start..." error, and an honest
/// queue_seconds — a job that waited 2 s before shutdown orphaned it did
/// queue for 2 s, and monitoring that reads 0.0 there under-counts queue
/// pressure exactly when it matters. Caller holds s.mutex with
/// s.status == kQueued.
void retire_queued_locked(JobState& s, const char* reason) {
  s.status = JobStatus::kCancelled;
  s.error = reason;
  s.queue_seconds =
      seconds_since(s.submitted, std::chrono::steady_clock::now());
  s.cv.notify_all();
}

/// Locking wrapper: retire iff still queued; running/terminal jobs only get
/// the cancel token (running jobs cancel cooperatively, terminal no-op).
void retire_queued(JobState& s, const char* reason) {
  s.cancel.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.status == JobStatus::kQueued) retire_queued_locked(s, reason);
}

/// Max-heap order: higher priority first, FIFO within a priority level.
bool pops_later(const std::shared_ptr<JobState>& a,
                const std::shared_ptr<JobState>& b) {
  if (a->priority != b->priority) return a->priority < b->priority;
  return a->sequence > b->sequence;
}

}  // namespace
}  // namespace detail

// ------------------------------------------------------------- JobHandle --

JobStatus JobHandle::status() const {
  require(valid(), "JobHandle::status: empty handle");
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->status;
}

JobResult JobHandle::wait() const {
  require(valid(), "JobHandle::wait: empty handle");
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return detail::terminal(state_->status); });
  return detail::snapshot_locked(*state_);
}

std::optional<JobResult> JobHandle::wait_for(double seconds) const {
  require(valid(), "JobHandle::wait_for: empty handle");
  std::unique_lock<std::mutex> lock(state_->mutex);
  const bool done = state_->cv.wait_for(
      lock, std::chrono::duration<double>(seconds),
      [&] { return detail::terminal(state_->status); });
  if (!done) return std::nullopt;
  return detail::snapshot_locked(*state_);
}

std::optional<JobResult> JobHandle::try_get() const {
  require(valid(), "JobHandle::try_get: empty handle");
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (!detail::terminal(state_->status)) return std::nullopt;
  return detail::snapshot_locked(*state_);
}

bool JobHandle::cancel() const {
  require(valid(), "JobHandle::cancel: empty handle");
  detail::JobState& s = *state_;
  s.cancel.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(s.mutex);
  if (detail::terminal(s.status)) return false;
  if (s.status == JobStatus::kQueued) {
    // Retire immediately: no worker time is spent and waiters wake now. The
    // worker that eventually pops this entry sees a terminal status and
    // skips it.
    detail::retire_queued_locked(s, "cancelled before start");
    return true;
  }
  // kRunning: the token is set; the pipeline aborts between stages, SATMAP
  // mid-solve.
  return true;
}

// -------------------------------------------------------- MappingService --

MappingService::MappingService(Options options, const MapperPipeline& pipeline)
    : pipeline_(&pipeline),
      cache_(options.cache_capacity, options.cache_shards),
      queue_(&detail::pops_later) {
  std::int32_t threads = options.num_threads;
  if (threads <= 0) {
    threads = static_cast<std::int32_t>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  workers_.reserve(threads);
  for (std::int32_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

MappingService::MappingService() : MappingService(Options{}) {}

MappingService::~MappingService() {
  std::vector<std::shared_ptr<detail::JobState>> orphans;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
    while (!queue_.empty()) {
      orphans.push_back(queue_.top());
      queue_.pop();
    }
    // In-flight jobs cancel cooperatively — shutdown must not wait out a
    // SATMAP solver budget; the worker reports them kCancelled itself.
    for (auto& job : running_) {
      job->cancel.store(true, std::memory_order_relaxed);
    }
  }
  queue_cv_.notify_all();
  for (auto& job : orphans) {
    detail::retire_queued(*job, "cancelled before start: service shutting down");
  }
  for (auto& worker : workers_) worker.join();
}

JobHandle MappingService::submit(BatchRequest request) {
  return submit(std::move(request), Submit{});
}

JobHandle MappingService::submit(BatchRequest request, Submit submit) {
  // General-circuit convenience: a request carrying a circuit may leave n
  // unset; the circuit is the size authority.
  if (request.circuit != nullptr && request.n <= 0) {
    request.n = request.circuit->num_qubits();
  }
  auto state = std::make_shared<detail::JobState>();
  state->request = std::move(request);
  state->priority = submit.priority;
  state->use_cache = submit.use_cache;
  state->submitted = std::chrono::steady_clock::now();
  // NaN and +inf mean "no deadline"; finite budgets are capped so the
  // duration_cast below cannot overflow the clock's integer representation
  // (1e9 s ≈ 31 years is already "never" for a mapping job).
  if (submit.deadline_seconds > 0.0 && std::isfinite(submit.deadline_seconds)) {
    state->has_deadline = true;
    const double capped = std::min(submit.deadline_seconds, 1.0e9);
    state->deadline =
        state->submitted + std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(capped));
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_) {
      detail::retire_queued(*state,
                            "cancelled before start: service shutting down");
      return JobHandle(std::move(state));
    }
    state->sequence = next_sequence_++;
    queue_.push(state);
  }
  queue_cv_.notify_one();
  return JobHandle(std::move(state));
}

void MappingService::worker_loop() {
  for (;;) {
    std::shared_ptr<detail::JobState> job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = queue_.top();
      queue_.pop();
      if (stopping_) job->cancel.store(true, std::memory_order_relaxed);
      running_.push_back(job);
    }
    process(job);
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      for (auto it = running_.begin(); it != running_.end(); ++it) {
        if (it->get() == job.get()) {
          running_.erase(it);
          break;
        }
      }
    }
  }
}

void MappingService::process(const std::shared_ptr<detail::JobState>& job) {
  const auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    if (detail::terminal(job->status)) return;  // cancelled while queued
    job->queue_seconds = detail::seconds_since(job->submitted, now);
    if (job->has_deadline && now >= job->deadline) {
      job->status = JobStatus::kExpired;
      job->error = "deadline exceeded before start (queued " +
                   std::to_string(job->queue_seconds) + " s)";
      job->cv.notify_all();
      return;
    }
    job->status = JobStatus::kRunning;
    job->dispatch_index = next_dispatch_.fetch_add(1);
  }

  const BatchRequest& req = job->request;
  if (req.circuit != nullptr && req.n != req.circuit->num_qubits()) {
    detail::finish(*job, JobStatus::kFailed,
                   "BatchRequest: n does not match the supplied circuit",
                   nullptr);
    return;
  }

  // Cache probe: deterministic engine, no caller-owned target, and n inside
  // run()'s accepted range — native_size on an unvalidated huge n could
  // overflow int32 before run() gets to reject it, so out-of-range sizes
  // skip the probe and fall through for the real error. General-circuit
  // requests fold their content fingerprint into the key.
  std::string key;
  if (job->use_cache && cache_.capacity() > 0 && req.n >= 1 &&
      req.n <= 16'777'216) {
    if (const MapperEngine* engine = pipeline_->find(req.engine)) {
      if (ResultCache::cacheable(*engine, req.options)) {
        key = ResultCache::key(req.engine, engine->native_size(req.n),
                               req.options, req.circuit.get());
        if (auto cached = cache_.get(key)) {
          // Entries are stored pre-normalized (zero timings, cache_hit set,
          // requested_n = native n), so the common exact-native hit shares
          // the immutable cached object with no copy at all — the hit path
          // must not pay a deep copy of a million-gate circuit. Only a
          // snapped request needs a copy to echo its own requested size.
          std::shared_ptr<const MapResult> served;
          if (cached->requested_n == req.n) {
            served = std::move(cached);
          } else {
            auto snapped = std::make_shared<MapResult>(*cached);
            snapped->requested_n = req.n;
            served = std::move(snapped);
          }
          detail::finish(*job, JobStatus::kDone, {}, std::move(served));
          return;
        }
      }
    }
  }

  MapOptions run_opts = req.options;
  run_opts.cancel = &job->cancel;
  if (job->has_deadline) {
    run_opts.deadline_seconds = detail::seconds_since(
        std::chrono::steady_clock::now(), job->deadline);
    if (run_opts.deadline_seconds <= 0.0) {
      detail::finish(*job, JobStatus::kExpired,
                     "deadline exceeded before start", nullptr);
      return;
    }
  }

  try {
    MapResult result =
        req.circuit != nullptr
            ? pipeline_->run_circuit(req.engine, *req.circuit, run_opts)
            : pipeline_->run(req.engine, req.n, run_opts);
    result.cache_hit = false;
    // Allocated non-const (then viewed as const) so a sole-owner consumer
    // like map_qft_batch may legally move the payload out.
    std::shared_ptr<const MapResult> shared =
        std::make_shared<MapResult>(std::move(result));
    if (!key.empty()) {
      // One normalization copy per insertion buys copy-free hits forever.
      auto normalized = std::make_shared<MapResult>(*shared);
      normalized->requested_n = normalized->n;
      normalized->timings = MapTimings{};
      normalized->cache_hit = true;
      cache_.put(key, std::move(normalized));
    }
    detail::finish(*job, JobStatus::kDone, {}, std::move(shared));
  } catch (const MapCancelled& e) {
    detail::finish(*job,
                   e.deadline_expired() ? JobStatus::kExpired
                                        : JobStatus::kCancelled,
                   e.what(), nullptr);
  } catch (const std::exception& e) {
    // A SATMAP TLE caused by the deadline clamp surfaces as a runtime_error;
    // if the job's deadline has meanwhile passed, report it as the deadline
    // outcome the caller asked for.
    if (job->has_deadline &&
        std::chrono::steady_clock::now() >= job->deadline) {
      detail::finish(*job, JobStatus::kExpired,
                     std::string("deadline exceeded: ") + e.what(), nullptr);
    } else {
      detail::finish(*job, JobStatus::kFailed, e.what(), nullptr);
    }
  } catch (...) {
    detail::finish(*job, JobStatus::kFailed, "unknown error", nullptr);
  }
}

std::size_t MappingService::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

std::size_t MappingService::running_count() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return running_.size();
}

MappingService& MappingService::shared() {
  static MappingService service{Options{}};
  return service;
}

}  // namespace qfto
