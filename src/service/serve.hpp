// Long-running front-end for the MappingService: newline-delimited JSON
// requests in, newline-delimited JSON responses out — scriptable from a
// shell pipe, smokable in CI, and the exact protocol the socket transport
// (service/net_server.hpp) serves to concurrent clients. One request per
// line:
//
//   {"id": 1, "engine": "lattice", "n": 100}
//   {"id": "warm", "engine": "lattice", "n": 100}            -> cache_hit
//   {"id": 2, "engine": "satmap", "n": 4, "deadline": 5.0}
//   {"id": 3, "engine": "sycamore", "m": 6, "strict_ie": true,
//    "priority": 10}
//   {"id": 4, "engine": "sabre",
//    "qasm": "OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0],q[1];\n"}
//   {"id": 5, "metrics": true}                               -> stats snapshot
//
// Fields: `engine` (required), `n` or `m` (required unless `qasm` is given;
// `m` means n = m*m), `qasm` (an OpenQASM 2.0 program — the request maps
// *that* circuit through the general entry point instead of QFT(n); parse
// errors come back in-band with from_qasm's line-numbered message; mutually
// exclusive with `n`/`m`), `id` (number or string, echoed back; null when
// absent), `priority` (higher first), `deadline` (seconds), `cache` (bool,
// default true; general circuits are cached under a content fingerprint),
// `verify` (bool, default true), `strict_ie`, `synced`, `trials`, `seed`,
// `budget` (SATMAP seconds), `solver` (SAT backend registry key, default
// "cdcl"; IPASIR plugins loaded at startup answer to their registry name
// here too), `sat_incremental` (bool, default true: one incremental SAT
// instance per SATMAP run vs re-encoding per probe), `portfolio` (bool,
// default false: race each SAT probe across diversified lanes, first
// definitive verdict wins), `lanes` (integer in [1, 64], default 2; the
// effective count is clamped to the machine's cores at run time),
// `sat_core_guided` (bool, default true: bisecting SWAP descent with
// learnt lower-bound clauses vs decrement-by-one), `device` (a calibrated
// device description — the path of a device JSON file, or the device JSON
// itself inline when the string starts with '{'; loaded at parse time, so a
// malformed file answers in-band with the loader's positioned message; the
// routed engines map onto its graph, verification charges its latency
// table, and the cache key carries its content fingerprint), `objective`
// ("depth" | "fidelity": what SABRE optimizes — fidelity scores candidate
// SWAPs by calibrated expected log-success). Unknown fields are an
// error, so typos fail loudly instead of silently mapping with defaults.
// String values accept the full JSON escape set including \uXXXX (surrogate
// pairs encode as UTF-8).
//
// `{"metrics": true}` (no other fields; optional `id`) answers immediately
// with a one-line stats document instead of submitting a job — the same
// payload `GET /metrics` serves over the socket front-end:
//
//   {"ok":true,"metrics":true,"queue_depth":...,"running":...,"workers":...,
//    "service":{"watchdog_fired":...,"jobs_wedged":...,"workers_replaced":...},
//    "requests":...,"responses":...,"shed":...,"parse_errors":...,
//    "in_flight":...,
//    "cache":{"hits":...,"misses":...,"insertions":...,"evictions":...,
//             "expired":...,"entries":...,"capacity":...},
//    "devices":{"loaded":...,"load_errors":...},
//    "sat":{"conflicts":...,"decisions":...,"restarts":...,"solve_calls":...},
//    "portfolio":{"races":...,"lane_cancellations":...,
//                 "wins":{"cdcl":...,...}},
//    "map_seconds":{"count":...,"p50":...,"p99":...},
//    "queue_seconds":{"count":...,"p50":...,"p99":...}}
//
// `cache` mirrors MappingService::cache_stats(); `sat` totals the solver
// effort of every completed job; `portfolio` snapshots the process-wide
// racing counters (sat::portfolio_counters()); the latency quantiles come
// from streaming histograms (~19% relative resolution, see
// net::LatencyHistogram).
//
// SAT-backed responses additionally carry sat_conflicts/sat_decisions/
// sat_restarts/sat_solve_calls, plus "portfolio_winner" (the racing lane
// that decided the run, e.g. "cdcl#1") when the request ran a portfolio.
//
// Responses stream in request order, each flushed as soon as its job
// completes (jobs themselves run concurrently and may be reordered by
// priority):
//
//   {"id":1,"ok":true,"status":"ok","engine":"lattice","requested_n":100,
//    "n":100,"physical":100,"depth":419,"h":100,"cphase":4950,"swap":4851,
//    "cnot":0,"log10_fidelity":-21.7,"cache_hit":false,"map_seconds":...,
//    "check_seconds":...,"queue_seconds":...}
//   {"id":2,"ok":false,"status":"timeout","retryable":true,
//    "error":"deadline exceeded ...","queue_seconds":...}
//
// Every response carries the error-taxonomy status word — identical over
// stdio, TCP and HTTP:
//
//   status     | meaning                                  | retryable
//   -----------+------------------------------------------+----------
//   ok         | mapped result follows                    | —
//   error      | engine threw / bad request               | false
//   cancelled  | caller (or shutdown) cancelled the job   | false
//   timeout    | per-job deadline won (incl. watchdog)    | true
//   shed       | admission control rejected under load    | true
//
// Failure responses carry `retryable` (should the client re-send this exact
// request after a backoff — see net::request_with_retry) and their
// `queue_seconds`.
//
// SAT-backed engines (satmap) additionally report their search effort:
// "sat_conflicts", "sat_decisions", "sat_restarts", "sat_solve_calls".
// The socket front-end adds one failure status the stdio loop never emits:
// {"ok":false,"status":"shed",...} when admission control rejects a
// request under load (see net_server.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "service/mapping_service.hpp"
#include "service/transport.hpp"

namespace qfto {

/// One parsed request line. `ok` false means a parse/validation problem
/// described in `error`; `id` is the raw JSON token to echo back ("null"
/// when the line carried none). `metrics` true (with `ok`) marks a stats
/// request: answer with metrics_json instead of submitting a job.
struct ServeRequest {
  bool ok = false;
  bool metrics = false;
  /// The line carried a "device" field that loaded (device_loaded) or failed
  /// the loader's validation (device_error, with the positioned message in
  /// `error`). Both front-ends fold these into ServeMetrics.
  bool device_loaded = false;
  bool device_error = false;
  std::string error;
  std::string id = "null";
  BatchRequest request;
  MappingService::Submit submit;
};

/// Parses one newline-delimited request. Length-bounded end to end: the
/// input need not be NUL-terminated (socket buffers and string_views are
/// parsed in place). Exposed for tests; run_serve_loop and the NetServer
/// are the consumers.
ServeRequest parse_serve_request(std::string_view line);

/// Formats the response line for a finished (or rejected) request.
std::string serve_response_json(const std::string& id, const JobResult& out);

/// Pre-formatted in-band failure with a transport-level status word the
/// JobStatus enum does not carry — the NetServer's "shed" responses:
///   {"id":<id>,"ok":false,"status":"shed","error":"..."}
std::string serve_inband_error(const std::string& id,
                               const std::string& status,
                               const std::string& error);

/// Serving-path counters shared by the stdio loop and the socket transport.
/// All counters are relaxed atomics and the histograms are wait-free, so
/// every connection thread records into one shared instance without a lock;
/// metrics_json reads a monitoring-grade snapshot, not a barrier.
struct ServeMetrics {
  std::atomic<std::uint64_t> requests{0};      // lines parsed (incl. rejects)
  std::atomic<std::uint64_t> responses{0};     // lines/bodies written
  std::atomic<std::uint64_t> shed{0};          // admission-control rejections
  std::atomic<std::uint64_t> parse_errors{0};  // malformed request lines
  std::atomic<std::int64_t> in_flight{0};      // submitted, not yet answered

  // Device-description ingestion ("device" request field).
  std::atomic<std::uint64_t> device_loads{0};        // loaded successfully
  std::atomic<std::uint64_t> device_load_errors{0};  // rejected by the loader

  /// Folds one parsed request's device-loading outcome into the counters.
  void record_request(const ServeRequest& req);

  // Solver-effort totals over every completed job.
  std::atomic<std::uint64_t> sat_conflicts{0};
  std::atomic<std::uint64_t> sat_decisions{0};
  std::atomic<std::uint64_t> sat_restarts{0};
  std::atomic<std::uint64_t> sat_solve_calls{0};

  net::LatencyHistogram map_latency;    // MapResult::timings.map_seconds
  net::LatencyHistogram queue_latency;  // JobResult::queue_seconds

  /// Folds one finished job into the histograms and solver totals.
  void record_result(const JobResult& out);
};

/// One-line stats document (see the header comment for the shape). The
/// service contributes queue depth, worker count and cache stats; `metrics`
/// contributes the serving counters and latency quantiles.
std::string metrics_json(const MappingService& service,
                         const ServeMetrics& metrics);

/// Reads requests from `in` until EOF, submits each to `service`, and
/// streams responses to `out` in request order (each flushed as its job
/// completes). Blank lines are skipped; per-request failures are reported
/// in-band as {"ok":false,...} responses. Returns 0 on clean EOF. When `out`
/// fails (dead client / broken pipe), the loop stops reading, cancels every
/// still-pending job and returns 1 — a dead consumer must not keep the
/// service grinding through its backlog.
int run_serve_loop(std::istream& in, std::ostream& out,
                   MappingService& service);

}  // namespace qfto
