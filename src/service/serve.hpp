// Long-running front-end for the MappingService: newline-delimited JSON
// requests in, newline-delimited JSON responses out — scriptable from a
// shell pipe and smokable in CI. One request per line:
//
//   {"id": 1, "engine": "lattice", "n": 100}
//   {"id": "warm", "engine": "lattice", "n": 100}            -> cache_hit
//   {"id": 2, "engine": "satmap", "n": 4, "deadline": 5.0}
//   {"id": 3, "engine": "sycamore", "m": 6, "strict_ie": true,
//    "priority": 10}
//   {"id": 4, "engine": "sabre",
//    "qasm": "OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0],q[1];\n"}
//
// Fields: `engine` (required), `n` or `m` (required unless `qasm` is given;
// `m` means n = m*m), `qasm` (an OpenQASM 2.0 program — the request maps
// *that* circuit through the general entry point instead of QFT(n); parse
// errors come back in-band with from_qasm's line-numbered message; mutually
// exclusive with `n`/`m`), `id` (number or string, echoed back; null when
// absent), `priority` (higher first), `deadline` (seconds), `cache` (bool,
// default true; general circuits are cached under a content fingerprint),
// `verify` (bool, default true), `strict_ie`, `synced`, `trials`, `seed`,
// `budget` (SATMAP seconds), `solver` (SAT backend registry key, default
// "cdcl"), `sat_incremental` (bool, default true: one incremental SAT
// instance per SATMAP run vs re-encoding per probe). Unknown fields are an
// error, so typos fail loudly instead of silently mapping with defaults.
//
// Responses stream in request order, each flushed as soon as its job
// completes (jobs themselves run concurrently and may be reordered by
// priority):
//
//   {"id":1,"ok":true,"engine":"lattice","requested_n":100,"n":100,
//    "physical":100,"depth":419,"h":100,"cphase":4950,"swap":4851,
//    "cnot":0,"cache_hit":false,"map_seconds":...,"check_seconds":...,
//    "queue_seconds":...}
//   {"id":2,"ok":false,"status":"expired","error":"deadline exceeded ..."}
//
// SAT-backed engines (satmap) additionally report their search effort:
// "sat_conflicts", "sat_decisions", "sat_restarts", "sat_solve_calls".
#pragma once

#include <iosfwd>
#include <string>

#include "service/mapping_service.hpp"

namespace qfto {

/// One parsed request line. `ok` false means a parse/validation problem
/// described in `error`; `id` is the raw JSON token to echo back ("null"
/// when the line carried none).
struct ServeRequest {
  bool ok = false;
  std::string error;
  std::string id = "null";
  BatchRequest request;
  MappingService::Submit submit;
};

/// Parses one newline-delimited request. Exposed for tests; run_serve_loop
/// is the consumer.
ServeRequest parse_serve_request(const std::string& line);

/// Formats the response line for a finished (or rejected) request.
std::string serve_response_json(const std::string& id, const JobResult& out);

/// Reads requests from `in` until EOF, submits each to `service`, and
/// streams responses to `out` in request order (each flushed as its job
/// completes). Blank lines are skipped. Returns 0; per-request failures are
/// reported in-band as {"ok":false,...} responses.
int run_serve_loop(std::istream& in, std::ostream& out,
                   MappingService& service);

}  // namespace qfto
