// TCP front-end for the MappingService — the transport that turns the
// single-client stdio serve loop into a multi-tenant server. One accept loop,
// one reader/writer thread pair per connection, both speaking the exact
// protocol of serve.hpp (parse_serve_request / serve_response_json), so the
// stdio loop, the socket path and every test exercise the same request
// grammar. Responses stream back in per-connection request order while jobs
// run concurrently under the service's priority/deadline semantics.
//
// Two protocols share the port, sniffed from the first bytes of each
// connection:
//
//   * newline-JSON (default): one request per line, one response line each,
//     any number of requests per connection — `qftmap --serve` over TCP.
//   * minimal HTTP/1.1: `GET /metrics` returns the metrics_json document;
//     `POST /map` takes one request object as its body and returns the
//     response JSON. One request per connection (Connection: close) — enough
//     for curl and load balancer health checks, not a web server.
//
// Admission control: a configurable global in-flight bound and a
// per-connection pending bound. A request over either limit is *shed* — the
// client gets an immediate in-band `{"ok":false,"status":"shed",...}` (HTTP
// 503) instead of a silently deepening queue; CHC-COMP-style
// resource-limited well-formedness is the model. Graceful drain: stop
// accepting, half-close every connection's read side, finish in-flight jobs
// within a drain budget, then flip cancel tokens on whatever remains.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/serve.hpp"
#include "service/transport.hpp"

namespace qfto {
namespace net {

class NetServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 binds an ephemeral port; port() reports the actual one.
    std::uint16_t port = 0;
    /// Global bound on jobs submitted-but-unanswered across all
    /// connections; requests past it are shed. 0 = unbounded.
    std::size_t max_inflight = 1024;
    /// Per-connection bound on queued responses (the reader stops admitting
    /// new jobs for a connection whose writer is this far behind).
    std::size_t max_pending_per_conn = 256;
    /// stop_and_drain(): seconds to let in-flight jobs finish before their
    /// cancel tokens are flipped.
    double drain_seconds = 10.0;
    /// SO_SNDTIMEO on accepted sockets: a client that stops reading for
    /// this long is treated as dead (its pending jobs are cancelled).
    int send_timeout_ms = 30000;
    /// Protocol line-length bound (requests and HTTP headers).
    std::size_t max_line = 1 << 20;
  };

  /// Binds and listens immediately (throws std::runtime_error on failure);
  /// serving starts with run() or start().
  NetServer(MappingService& service, Options options);

  /// Equivalent to request_stop() + stop_and_drain().
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  const std::string& host() const { return listener_.host(); }
  std::uint16_t port() const { return listener_.port(); }

  /// Serving counters shared by every connection — the /metrics payload.
  ServeMetrics& metrics() { return metrics_; }

  /// Accept loop on the calling thread; returns once request_stop() is
  /// called (connections may still be finishing — follow with
  /// stop_and_drain()).
  void run();

  /// run() on a background thread (tests and benchmarks).
  void start();

  /// Stops the accept loop. Async-signal-safe by construction — one atomic
  /// store plus a write() to a self-pipe that wakes the accept loop's poll —
  /// so the CLI's SIGTERM/SIGINT handler may call it directly. It must never
  /// grow a lock, an allocation, or any other non-signal-safe work.
  void request_stop();

  /// Graceful drain: stop accepting, close the listener, half-close every
  /// connection (clients see EOF; no new requests are read), wait up to
  /// drain_seconds for in-flight jobs and response writes to finish, then
  /// cancel whatever is still pending and join all connection threads.
  void stop_and_drain();

 private:
  struct Pending;
  struct Connection;

  void accept_loop();
  void serve_connection(Connection& conn);
  void serve_http(Connection& conn, LineReader& reader,
                  const std::string& request_line);
  void writer_loop(Connection& conn);
  /// Admission + parse of one request payload; returns the queue entry.
  Pending make_entry(Connection& conn, std::string_view payload);
  void reap_finished_locked();

  MappingService* service_;
  Options options_;
  Listener listener_;
  ServeMetrics metrics_;

  std::atomic<bool> stop_{false};
  /// Self-pipe ([0] read / [1] write): request_stop() writes one byte so the
  /// accept loop's poll returns immediately instead of sitting out its
  /// timeout — the async-signal-safe wake-up a signal handler needs.
  int wake_pipe_[2] = {-1, -1};
  std::thread accept_thread_;  // only when start() was used
  bool drained_ = false;

  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Connection>> conns_;
};

}  // namespace net
}  // namespace qfto
