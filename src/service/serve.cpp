#include "service/serve.hpp"

#include "arch/device_model.hpp"
#include "qasm/qasm.hpp"
#include "sat/federation/portfolio.hpp"

#include <cctype>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <istream>
#include <map>
#include <mutex>
#include <ostream>
#include <thread>

namespace qfto {

namespace {

// ------------------------------------------------- minimal flat-JSON read --
// The protocol needs exactly one shape — a single-level object with string,
// number, bool and null values — so the parser is a few dozen lines instead
// of a JSON library dependency. Every access is length-bounded: the input is
// a string_view over a socket buffer, so neither keyword matching nor number
// parsing may assume a NUL terminator past `end`.

struct JsonValue {
  enum Kind { kString, kNumber, kBool, kNull } kind = kNull;
  std::string str;     // kString payload
  double num = 0.0;    // kNumber payload
  bool flag = false;   // kBool payload
  std::string raw;     // verbatim token, used to echo `id` back
};

struct FlatJsonParser {
  const char* p;
  const char* end;
  std::string error;

  explicit FlatJsonParser(std::string_view s)
      : p(s.data()), end(s.data() + s.size()) {}

  void skip_ws() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }

  bool fail(const std::string& what) {
    error = what;
    return false;
  }

  /// Remaining input starts with `kw` (bounds-checked *before* comparing —
  /// the tail may be shorter than the keyword and is not NUL-terminated).
  bool match_keyword(const char* kw, std::size_t len) {
    if (static_cast<std::size_t>(end - p) < len) return false;
    if (std::memcmp(p, kw, len) != 0) return false;
    p += len;
    return true;
  }

  /// Appends `cp` (a Unicode scalar value) to `out` as UTF-8.
  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  /// Four hex digits after a \u escape.
  bool parse_hex4(std::uint32_t& out) {
    if (end - p < 4) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = *p++;
      std::uint32_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("bad hex digit in \\u escape");
      }
      out = (out << 4) | digit;
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (p >= end || *p != '"') return fail("expected string");
    ++p;
    out.clear();
    while (p < end && *p != '"') {
      char c = *p++;
      if (c == '\\') {
        if (p >= end) return fail("dangling escape");
        const char esc = *p++;
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            std::uint32_t cp;
            if (!parse_hex4(cp)) return false;
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: a low surrogate must follow, the pair
              // combining into one supplementary-plane scalar.
              if (end - p < 2 || p[0] != '\\' || p[1] != 'u') {
                return fail("unpaired surrogate in \\u escape");
              }
              p += 2;
              std::uint32_t low;
              if (!parse_hex4(low)) return false;
              if (low < 0xDC00 || low > 0xDFFF) {
                return fail("unpaired surrogate in \\u escape");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return fail("unpaired surrogate in \\u escape");
            }
            append_utf8(out, cp);
            continue;  // already appended, possibly multi-byte
          }
          default: return fail("unsupported escape");
        }
      }
      out += c;
    }
    if (p >= end) return fail("unterminated string");
    ++p;  // closing quote
    return true;
  }

  bool parse_number(JsonValue& out) {
    // strtod reads until it stops recognizing number syntax — on a buffer
    // with no NUL terminator that walk can run past `end`. Copy the token
    // into a bounded, NUL-terminated stack buffer first. 63 chars is far
    // beyond any finite double's shortest spelling, so overflow here is a
    // malformed token, not a lost precision case.
    char buf[64];
    std::size_t len = 0;
    while (p + len < end) {
      const char c = p[len];
      const bool number_char = (c >= '0' && c <= '9') || c == '+' ||
                               c == '-' || c == '.' || c == 'e' || c == 'E';
      if (!number_char) break;
      if (len + 1 >= sizeof(buf)) return fail("number token too long");
      buf[len] = c;
      ++len;
    }
    if (len == 0) return fail("expected value");
    buf[len] = '\0';
    char* num_end = nullptr;
    out.num = std::strtod(buf, &num_end);
    if (num_end != buf + len) return fail("expected value");
    // 1e999 parses as inf; letting it through would feed non-finite
    // deadlines/budgets into duration arithmetic (float-cast UB).
    if (!std::isfinite(out.num)) return fail("non-finite number");
    out.kind = JsonValue::kNumber;
    p += len;
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (p >= end) return fail("expected value");
    const char* start = p;
    if (*p == '"') {
      out.kind = JsonValue::kString;
      if (!parse_string(out.str)) return false;
    } else if (match_keyword("true", 4)) {
      out.kind = JsonValue::kBool;
      out.flag = true;
    } else if (match_keyword("false", 5)) {
      out.kind = JsonValue::kBool;
      out.flag = false;
    } else if (match_keyword("null", 4)) {
      out.kind = JsonValue::kNull;
    } else {
      if (!parse_number(out)) return false;
    }
    out.raw.assign(start, p);
    return true;
  }

  bool parse_object(std::map<std::string, JsonValue>& out) {
    skip_ws();
    if (p >= end || *p != '{') return fail("expected '{'");
    ++p;
    skip_ws();
    if (p < end && *p == '}') {
      ++p;
    } else {
      for (;;) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (p >= end || *p != ':') return fail("expected ':'");
        ++p;
        JsonValue value;
        if (!parse_value(value)) return false;
        if (!out.emplace(std::move(key), std::move(value)).second) {
          return fail("duplicate key");
        }
        skip_ws();
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        if (p < end && *p == '}') {
          ++p;
          break;
        }
        return fail("expected ',' or '}'");
      }
    }
    skip_ws();
    if (p != end) return fail("trailing content after object");
    return true;
  }
};

// ------------------------------------------------------------ JSON write --

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

/// The error taxonomy's status word — identical over stdio, TCP and HTTP.
/// Every response carries one of: ok | error | cancelled | timeout | shed
/// ("shed" is minted by the transports' admission control, not by JobStatus).
const char* status_word(JobStatus s) {
  switch (s) {
    case JobStatus::kQueued: return "queued";    // never serialized
    case JobStatus::kRunning: return "running";  // never serialized
    case JobStatus::kDone: return "ok";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kExpired: return "timeout";
    case JobStatus::kFailed: return "error";
  }
  return "error";
}

/// Whether a client should retry the same request. Timeouts and load
/// shedding are transient (more budget / less load can succeed); cancels
/// were asked for and hard errors are deterministic, so retrying burns
/// worker time reproducing the same outcome.
bool status_retryable(const std::string& status) {
  return status == "timeout" || status == "shed";
}

/// Integer field helper: the protocol's counts must be integral. Values
/// outside the exact-double range are rejected *before* the cast — a
/// hostile {"n": 1e19} must come back as an in-band error, not trip the
/// float-cast-overflow UB the sanitizer leg aborts on.
bool as_int(const JsonValue& v, std::int64_t& out) {
  constexpr double kExact = 9007199254740992.0;  // 2^53
  if (v.kind != JsonValue::kNumber) return false;
  if (!(v.num >= -kExact && v.num <= kExact)) return false;
  const auto i = static_cast<std::int64_t>(v.num);
  if (static_cast<double>(i) != v.num) return false;
  out = i;
  return true;
}

}  // namespace

ServeRequest parse_serve_request(std::string_view line) {
  ServeRequest req;
  std::map<std::string, JsonValue> fields;
  FlatJsonParser parser(line);
  if (!parser.parse_object(fields)) {
    req.error = "parse error: " + parser.error;
    return req;
  }

  // Resolve `id` first so every rejection below can still echo it.
  if (const auto it = fields.find("id"); it != fields.end()) {
    if (it->second.kind == JsonValue::kString) {
      req.id = "\"" + json_escape(it->second.str) + "\"";
    } else {
      req.id = it->second.raw;
    }
  }

  // A stats request is its own shape: {"metrics":true} plus an optional id,
  // nothing else — mixing it with job fields is a client bug.
  if (const auto it = fields.find("metrics"); it != fields.end()) {
    if (it->second.kind != JsonValue::kBool || !it->second.flag) {
      req.error = "\"metrics\" must be true";
      return req;
    }
    if (fields.size() > (fields.count("id") != 0 ? 2u : 1u)) {
      req.error = "\"metrics\" requests take no other fields";
      return req;
    }
    req.ok = true;
    req.metrics = true;
    return req;
  }

  std::int64_t n = -1, m = -1;
  for (const auto& [key, value] : fields) {
    std::int64_t i = 0;
    if (key == "id") {
      // handled above
    } else if (key == "engine") {
      if (value.kind != JsonValue::kString) {
        req.error = "\"engine\" must be a string";
        return req;
      }
      req.request.engine = value.str;
    } else if (key == "n") {
      if (!as_int(value, n)) {
        req.error = "\"n\" must be an integer";
        return req;
      }
    } else if (key == "m") {
      if (!as_int(value, m)) {
        req.error = "\"m\" must be an integer";
        return req;
      }
    } else if (key == "priority") {
      if (!as_int(value, i) || i < INT32_MIN || i > INT32_MAX) {
        req.error = "\"priority\" must be a 32-bit integer";
        return req;
      }
      req.submit.priority = static_cast<std::int32_t>(i);
    } else if (key == "deadline") {
      if (value.kind != JsonValue::kNumber || value.num <= 0.0) {
        req.error = "\"deadline\" must be a positive number of seconds";
        return req;
      }
      req.submit.deadline_seconds = value.num;
    } else if (key == "cache") {
      if (value.kind != JsonValue::kBool) {
        req.error = "\"cache\" must be a bool";
        return req;
      }
      req.submit.use_cache = value.flag;
    } else if (key == "verify") {
      if (value.kind != JsonValue::kBool) {
        req.error = "\"verify\" must be a bool";
        return req;
      }
      req.request.options.verify = value.flag;
    } else if (key == "strict_ie") {
      if (value.kind != JsonValue::kBool) {
        req.error = "\"strict_ie\" must be a bool";
        return req;
      }
      req.request.options.strict_ie = value.flag;
    } else if (key == "synced") {
      if (value.kind != JsonValue::kBool) {
        req.error = "\"synced\" must be a bool";
        return req;
      }
      if (value.flag) req.request.options.lattice_phase_offset = 0;
    } else if (key == "trials") {
      if (!as_int(value, i) || i < 1 || i > INT32_MAX) {
        req.error = "\"trials\" must be a positive 32-bit integer";
        return req;
      }
      req.request.options.sabre.trials = static_cast<std::int32_t>(i);
    } else if (key == "seed") {
      if (!as_int(value, i) || i < 0) {
        req.error = "\"seed\" must be a non-negative integer";
        return req;
      }
      req.request.options.sabre.seed = static_cast<std::uint64_t>(i);
    } else if (key == "budget") {
      if (value.kind != JsonValue::kNumber || value.num <= 0.0) {
        req.error = "\"budget\" must be a positive number of seconds";
        return req;
      }
      req.request.options.satmap.time_budget_seconds = value.num;
    } else if (key == "solver") {
      // Backend existence is validated at route time (the registry may have
      // grown), but the obvious typo class fails fast here.
      if (value.kind != JsonValue::kString || value.str.empty()) {
        req.error = "\"solver\" must be a non-empty string";
        return req;
      }
      req.request.options.satmap.solver = value.str;
    } else if (key == "sat_incremental") {
      if (value.kind != JsonValue::kBool) {
        req.error = "\"sat_incremental\" must be a bool";
        return req;
      }
      req.request.options.satmap.incremental = value.flag;
    } else if (key == "portfolio") {
      if (value.kind != JsonValue::kBool) {
        req.error = "\"portfolio\" must be a bool";
        return req;
      }
      req.request.options.satmap.portfolio = value.flag;
    } else if (key == "lanes") {
      std::int64_t i = 0;
      if (!as_int(value, i) || i < 1 || i > 64) {
        req.error = "\"lanes\" must be an integer in [1, 64]";
        return req;
      }
      req.request.options.satmap.lanes = static_cast<std::int32_t>(i);
    } else if (key == "sat_core_guided") {
      if (value.kind != JsonValue::kBool) {
        req.error = "\"sat_core_guided\" must be a bool";
        return req;
      }
      req.request.options.satmap.core_guided = value.flag;
    } else if (key == "device") {
      // Calibrated device description: a file path, or the device JSON
      // itself inline when the string starts with '{' (after optional
      // leading whitespace). Loaded right here so a malformed description
      // answers in-band with the loader's positioned message instead of a
      // late job failure.
      if (value.kind != JsonValue::kString || value.str.empty()) {
        req.error = "\"device\" must be a non-empty string (file path or "
                    "inline device JSON)";
        return req;
      }
      const std::size_t first = value.str.find_first_not_of(" \t\r\n");
      try {
        DeviceModel dm = (first != std::string::npos &&
                          value.str[first] == '{')
                             ? DeviceModel::from_json(value.str)
                             : DeviceModel::load_file(value.str);
        req.request.options.device =
            std::make_shared<const DeviceModel>(std::move(dm));
        req.device_loaded = true;
      } catch (const std::invalid_argument& e) {
        req.device_error = true;
        req.error = std::string("bad \"device\": ") + e.what();
        return req;
      }
    } else if (key == "objective") {
      if (value.kind == JsonValue::kString && value.str == "depth") {
        req.request.options.objective = Objective::kDepth;
      } else if (value.kind == JsonValue::kString &&
                 value.str == "fidelity") {
        req.request.options.objective = Objective::kFidelity;
      } else {
        req.error = "\"objective\" must be \"depth\" or \"fidelity\"";
        return req;
      }
    } else if (key == "qasm") {
      // General-circuit ingestion: the request maps this OpenQASM 2.0
      // program (newlines arrive as \n escapes) instead of QFT(n). Parse
      // errors surface in-band with from_qasm's line-numbered message.
      if (value.kind != JsonValue::kString || value.str.empty()) {
        req.error = "\"qasm\" must be a non-empty OpenQASM 2.0 string";
        return req;
      }
      try {
        req.request.circuit =
            std::make_shared<const Circuit>(from_qasm(value.str));
      } catch (const std::invalid_argument& e) {
        req.error = std::string("bad \"qasm\": ") + e.what();
        return req;
      }
    } else {
      req.error = "unknown field \"" + json_escape(key) + "\"";
      return req;
    }
  }

  if (req.request.engine.empty()) {
    req.error = "missing \"engine\"";
    return req;
  }
  if (req.request.circuit != nullptr) {
    // The circuit is the size authority; a conflicting explicit size is a
    // client bug we refuse to guess around.
    if (n >= 0 || m >= 0) {
      req.error = "\"qasm\" is mutually exclusive with \"n\"/\"m\"";
      return req;
    }
    n = req.request.circuit->num_qubits();
  }
  if (m > 4096) {  // 4096^2 is already the n ceiling; also guards m*m
    req.error = "\"m\" too large";
    return req;
  }
  if (n < 0 && m > 0) n = m * m;  // square backends take m for convenience
  if (n < 1) {
    req.error = "missing or non-positive \"n\" (or \"m\")";
    return req;
  }
  if (n > 16'777'216) {
    req.error = "\"n\" too large";
    return req;
  }
  req.request.n = static_cast<std::int32_t>(n);
  req.ok = true;
  return req;
}

std::string serve_response_json(const std::string& id, const JobResult& out) {
  std::string s = "{\"id\":" + id;
  if (!out.ok()) {
    const std::string status = status_word(out.status);
    s += ",\"ok\":false,\"status\":\"" + status + "\"";
    s += ",\"retryable\":";
    s += status_retryable(status) ? "true" : "false";
    s += ",\"error\":\"" + json_escape(out.error) + "\"";
    // Failures report queue time too: a fleet shedding deadline-expired work
    // needs to see *where* the budget went (queued vs running).
    s += ",\"queue_seconds\":";
    append_number(s, out.queue_seconds);
    s += "}";
    return s;
  }
  const MapResult& r = *out.result;
  s += ",\"ok\":true,\"status\":\"ok\"";
  s += ",\"engine\":\"" + json_escape(r.engine) + "\"";
  s += ",\"requested_n\":" + std::to_string(r.requested_n);
  s += ",\"n\":" + std::to_string(r.n);
  s += ",\"physical\":" + std::to_string(r.graph.num_qubits());
  if (r.check.ok) {
    s += ",\"depth\":" + std::to_string(r.check.depth);
    s += ",\"h\":" + std::to_string(r.check.counts.h);
    s += ",\"cphase\":" + std::to_string(r.check.counts.cphase);
    s += ",\"swap\":" + std::to_string(r.check.counts.swap);
    s += ",\"cnot\":" + std::to_string(r.check.counts.cnot);
    s += ",\"log10_fidelity\":";
    append_number(s, r.log10_fidelity);
  }
  if (r.timings.sat.solve_calls > 0) {
    // SAT-backed engines surface their search effort; analytical engines
    // never ran a solver, so their response shape is unchanged.
    s += ",\"sat_conflicts\":" + std::to_string(r.timings.sat.conflicts);
    s += ",\"sat_decisions\":" + std::to_string(r.timings.sat.decisions);
    s += ",\"sat_restarts\":" + std::to_string(r.timings.sat.restarts);
    s += ",\"sat_solve_calls\":" + std::to_string(r.timings.sat.solve_calls);
    if (!r.timings.sat_winner.empty()) {
      // Portfolio provenance: which racing lane decided the run.
      s += ",\"portfolio_winner\":\"" + json_escape(r.timings.sat_winner) +
           "\"";
    }
  }
  s += ",\"cache_hit\":";
  s += r.cache_hit ? "true" : "false";
  s += ",\"map_seconds\":";
  append_number(s, r.timings.map_seconds);
  s += ",\"check_seconds\":";
  append_number(s, r.timings.check_seconds);
  s += ",\"queue_seconds\":";
  append_number(s, out.queue_seconds);
  s += "}";
  return s;
}

std::string serve_inband_error(const std::string& id,
                               const std::string& status,
                               const std::string& error) {
  return "{\"id\":" + id + ",\"ok\":false,\"status\":\"" +
         json_escape(status) + "\",\"retryable\":" +
         (status_retryable(status) ? "true" : "false") + ",\"error\":\"" +
         json_escape(error) + "\"}";
}

// ------------------------------------------------------------- metrics --

void ServeMetrics::record_request(const ServeRequest& req) {
  if (req.device_error) {
    device_load_errors.fetch_add(1, std::memory_order_relaxed);
  } else if (req.device_loaded) {
    device_loads.fetch_add(1, std::memory_order_relaxed);
  }
}

void ServeMetrics::record_result(const JobResult& out) {
  queue_latency.record(out.queue_seconds);
  if (out.result != nullptr) {
    const MapTimings& t = out.result->timings;
    map_latency.record(t.map_seconds);
    sat_conflicts.fetch_add(t.sat.conflicts, std::memory_order_relaxed);
    sat_decisions.fetch_add(t.sat.decisions, std::memory_order_relaxed);
    sat_restarts.fetch_add(t.sat.restarts, std::memory_order_relaxed);
    sat_solve_calls.fetch_add(t.sat.solve_calls, std::memory_order_relaxed);
  }
}

std::string metrics_json(const MappingService& service,
                         const ServeMetrics& metrics) {
  const ResultCache::Stats cache = service.cache_stats();
  const auto count = [](const std::atomic<std::uint64_t>& c) {
    return std::to_string(c.load(std::memory_order_relaxed));
  };
  std::string s = "{\"ok\":true,\"metrics\":true";
  s += ",\"queue_depth\":" + std::to_string(service.queue_depth());
  s += ",\"running\":" + std::to_string(service.running_count());
  s += ",\"workers\":" + std::to_string(service.num_threads());
  const MappingService::Stats svc = service.stats();
  s += ",\"service\":{\"watchdog_fired\":" + std::to_string(svc.watchdog_fired);
  s += ",\"jobs_wedged\":" + std::to_string(svc.jobs_wedged);
  s += ",\"workers_replaced\":" + std::to_string(svc.workers_replaced) + "}";
  s += ",\"requests\":" + count(metrics.requests);
  s += ",\"responses\":" + count(metrics.responses);
  s += ",\"shed\":" + count(metrics.shed);
  s += ",\"parse_errors\":" + count(metrics.parse_errors);
  s += ",\"in_flight\":" +
       std::to_string(metrics.in_flight.load(std::memory_order_relaxed));
  s += ",\"cache\":{\"hits\":" + std::to_string(cache.hits);
  s += ",\"misses\":" + std::to_string(cache.misses);
  s += ",\"insertions\":" + std::to_string(cache.insertions);
  s += ",\"evictions\":" + std::to_string(cache.evictions);
  s += ",\"expired\":" + std::to_string(cache.expired);
  s += ",\"load_quarantined\":" + std::to_string(cache.load_quarantined);
  s += ",\"entries\":" + std::to_string(cache.entries);
  s += ",\"capacity\":" + std::to_string(cache.capacity) + "}";
  s += ",\"devices\":{\"loaded\":" + count(metrics.device_loads);
  s += ",\"load_errors\":" + count(metrics.device_load_errors) + "}";
  s += ",\"sat\":{\"conflicts\":" + count(metrics.sat_conflicts);
  s += ",\"decisions\":" + count(metrics.sat_decisions);
  s += ",\"restarts\":" + count(metrics.sat_restarts);
  s += ",\"solve_calls\":" + count(metrics.sat_solve_calls) + "}";
  {
    // Process-wide portfolio racing counters (every PortfolioSolver in the
    // process, not just served jobs): races run, losing lanes cancelled,
    // and the per-backend win table the lane-ordering heuristic feeds on.
    const sat::PortfolioCounters pf = sat::portfolio_counters();
    s += ",\"portfolio\":{\"races\":" + std::to_string(pf.races);
    s += ",\"lane_cancellations\":" + std::to_string(pf.lane_cancellations);
    s += ",\"wins\":{";
    bool first = true;
    for (const auto& [backend, wins] : pf.wins_by_backend) {
      if (!first) s += ',';
      first = false;
      s += "\"" + json_escape(backend) + "\":" + std::to_string(wins);
    }
    s += "}}";
  }
  const auto histogram = [&s](const char* name,
                              const net::LatencyHistogram& h) {
    s += ",\"";
    s += name;
    s += "\":{\"count\":" + std::to_string(h.count());
    s += ",\"p50\":";
    append_number(s, h.quantile(0.5));
    s += ",\"p99\":";
    append_number(s, h.quantile(0.99));
    s += "}";
  };
  histogram("map_seconds", metrics.map_latency);
  histogram("queue_seconds", metrics.queue_latency);
  s += "}";
  return s;
}

// ---------------------------------------------------------- stdio loop --

int run_serve_loop(std::istream& in, std::ostream& out,
                   MappingService& service) {
  // Reader/writer split: the reader blocks in getline while the writer
  // emits each response — in request order, flushed per line — the moment
  // its job finishes. A single-threaded loop could only emit on the next
  // input line, deadlocking interactive clients that wait for a response
  // before sending the next request.
  struct Pending {
    std::string id;
    JobHandle handle;      // empty when `immediate` carries the response
    std::string immediate; // pre-formatted response for rejected lines
  };
  constexpr std::size_t kMaxPending = 256;  // reader back-pressure bound
  ServeMetrics metrics;
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Pending> pending;
  bool eof = false;
  bool dead = false;  // `out` failed: the client is gone

  std::thread writer([&]() {
    for (;;) {
      Pending entry;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return eof || !pending.empty(); });
        if (pending.empty()) return;  // eof and drained
        entry = std::move(pending.front());
        pending.pop_front();
      }
      cv.notify_all();  // reader may be waiting on the back-pressure bound
      if (entry.handle.valid()) {
        const JobResult result = entry.handle.wait();
        metrics.record_result(result);
        metrics.in_flight.fetch_sub(1, std::memory_order_relaxed);
        out << serve_response_json(entry.id, result) << '\n' << std::flush;
      } else {
        out << entry.immediate << '\n' << std::flush;
      }
      metrics.responses.fetch_add(1, std::memory_order_relaxed);
      if (!out) {
        // Broken pipe: stop the reader, stop draining — every job still in
        // `pending` is cancelled below; finishing them would burn worker
        // time producing output nobody can receive.
        std::lock_guard<std::mutex> lock(mutex);
        dead = true;
        cv.notify_all();
        return;
      }
    }
  });

  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    metrics.requests.fetch_add(1, std::memory_order_relaxed);
    ServeRequest req = parse_serve_request(line);
    metrics.record_request(req);
    Pending entry;
    entry.id = req.id;
    if (!req.ok) {
      metrics.parse_errors.fetch_add(1, std::memory_order_relaxed);
      JobResult rejected;
      rejected.status = JobStatus::kFailed;
      rejected.error = req.error;
      entry.immediate = serve_response_json(req.id, rejected);
    } else if (req.metrics) {
      entry.immediate = metrics_json(service, metrics);
    } else {
      entry.handle = service.submit(std::move(req.request), req.submit);
      metrics.in_flight.fetch_add(1, std::memory_order_relaxed);
    }
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return dead || pending.size() < kMaxPending; });
      if (dead) {
        // The writer is gone; this entry would never be drained. Cancel its
        // job (if any) along with the rest below.
        pending.push_back(std::move(entry));
        break;
      }
      pending.push_back(std::move(entry));
    }
    cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(mutex);
    eof = true;
  }
  cv.notify_all();
  writer.join();
  // On a dead client the writer exits with `pending` non-empty: cancel every
  // orphaned job so the pool stops grinding through an unread backlog.
  bool client_died;
  std::deque<Pending> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex);
    client_died = dead;
    orphans.swap(pending);
  }
  for (Pending& entry : orphans) {
    if (entry.handle.valid()) {
      entry.handle.cancel();
      metrics.in_flight.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  return client_died ? 1 : 0;
}

}  // namespace qfto
