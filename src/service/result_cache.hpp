// Sharded LRU cache of MapResults — the ROADMAP's "result caching /
// memoization" item. The analytical mappers are deterministic, so a repeated
// (engine, native n, option fingerprint) request can be served bit-identically
// at zero cost; the MappingService consults this cache before dispatching a
// job to the worker pool. Shards each carry their own mutex so concurrent
// workers on different keys never contend on one lock.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "pipeline/mapper_pipeline.hpp"

namespace qfto {

class ResultCache {
 public:
  /// `capacity` is the total entry budget across all shards (0 disables the
  /// cache: get() always misses, put() drops). `shards` is clamped to >= 1.
  /// `ttl_seconds` > 0 bounds every entry's age: a get() older than the TTL
  /// expires the entry lazily (counted in Stats::expired, served as a miss).
  /// 0 disables aging — device-less topologies never go stale, but a
  /// calibration-keyed entry outliving its device's recalibration window
  /// should not be served forever.
  explicit ResultCache(std::size_t capacity = 1024, std::size_t shards = 8,
                       double ttl_seconds = 0.0);

  /// Canonical cache key: engine, *native* size, and every MapOptions field
  /// that shapes the result. Serving knobs (cancel, deadline_seconds,
  /// satmap.dump_cnf_path, satmap.stats_out) and `target` are excluded —
  /// keys are only built for cacheable requests. General-circuit requests
  /// pass their circuit: its content fingerprint joins the key, so two
  /// different circuits of the same size and options occupy distinct
  /// entries, and a QFT request never aliases a general one.
  static std::string key(const std::string& engine, std::int32_t native_n,
                         const MapOptions& opts,
                         const Circuit* circuit = nullptr);

  /// True when a request may be served from / stored into the cache: the
  /// engine replays deterministically and no caller-owned raw graph/device
  /// pointer is involved (a raw pointer cannot be fingerprinted safely).
  /// MapOptions::device *is* cacheable — its content fingerprint joins the
  /// key, so identical shapes with different calibration never collide.
  static bool cacheable(const MapperEngine& engine, const MapOptions& opts);

  /// Hit: the cached result, promoted to most-recently-used. Miss: nullptr.
  std::shared_ptr<const MapResult> get(const std::string& key);

  /// Inserts (or refreshes) `value`, evicting the shard's LRU tail when over
  /// budget.
  void put(const std::string& key, std::shared_ptr<const MapResult> value);

  void clear();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    /// Entries dropped by TTL aging (each also counts as a miss).
    std::uint64_t expired = 0;
    /// Malformed records skipped (not loaded) by load() over this cache's
    /// lifetime — one corrupt entry costs exactly that entry.
    std::uint64_t load_quarantined = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;  // configured global bound (entries <= capacity)
  };
  /// Aggregated over shards (each shard is locked in turn, so the totals are
  /// a consistent-enough snapshot for monitoring, not a barrier).
  Stats stats() const;

  std::size_t capacity() const { return capacity_; }
  double ttl_seconds() const { return ttl_seconds_; }

  /// Cross-process persistence (--cache-file): writes every resident entry
  /// in a line-oriented text format whose MapResult payload is the
  /// to_qasm/mapped_from_qasm round trip — the same exact codec QASM export
  /// uses, so a reloaded entry serves bit-identical results. Entries are
  /// written LRU-first per shard; load() re-inserts in file order, so the
  /// recency order survives the round trip. Returns false when the stream
  /// fails mid-write.
  bool save(std::ostream& out) const;

  /// save() to `path` crash-safely: the bytes go to a sibling temp file,
  /// which is fsynced and atomically renamed over `path` — a crash or
  /// SIGKILL at any instant leaves either the old file or the new one,
  /// never a truncation. False with a message in `error` on any failure
  /// (the temp file is removed; `path` is untouched).
  bool save_file(const std::string& path, std::string* error = nullptr) const;

  /// Restores entries written by save() through the normal put() path (the
  /// capacity bound applies; a smaller cache keeps the most recent tail).
  /// False with a message in `error` on a bad magic line or an injected
  /// read failure. A malformed *entry* does not abort the load: the record
  /// is quarantined (counted in Stats::load_quarantined and summarized in
  /// `error`, which can be set even when load returns true) and reading
  /// resynchronizes at the next "entry" line — one corrupt record must not
  /// discard an entire warmed cache.
  bool load(std::istream& in, std::string* error = nullptr);

 private:
  /// One resident entry. `inserted` drives TTL aging; reloaded (load())
  /// entries get a fresh timestamp — persistence does not preserve age.
  struct Entry {
    std::string key;
    std::shared_ptr<const MapResult> value;
    std::chrono::steady_clock::time_point inserted;
  };

  struct Shard {
    std::mutex mutex;
    /// This shard's slice of the global budget: base capacity/shards, the
    /// first capacity%shards shards carry one extra — the quotas sum to
    /// exactly `capacity`, so total resident entries can never exceed it
    /// (the old ceil-rounded shared bound could overshoot by shards-1).
    std::size_t capacity = 0;
    // MRU at front; map values point into the list.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t expired = 0;
  };

  Shard& shard_for(const std::string& key);

  std::size_t capacity_;
  double ttl_seconds_ = 0.0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> load_quarantined_{0};
};

}  // namespace qfto
