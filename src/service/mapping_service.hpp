// Async mapping service — the ROADMAP's north-star serving path. A
// MappingService owns a persistent worker pool and a priority job queue in
// front of the MapperPipeline registry: submit() returns a JobHandle
// supporting wait / try_get / cancel and per-job deadlines, and a sharded
// LRU ResultCache serves repeated deterministic requests bit-identically at
// zero cost. map_qft_batch and the `qftmap --serve` front-end are thin
// drivers over this class.
//
// Deadlines are enforced twice. Cooperatively: the job's cancel token and
// remaining-budget clamp make well-behaved engines abort on their own.
// Hard: a watchdog thread fires the cancel token the moment a running job's
// deadline passes, and if the worker still hasn't retired the job after
// Options::wedge_grace_seconds (an engine wedged in a non-polling loop), the
// watchdog retires the job as kExpired itself, detaches the wedged worker
// thread, and spawns a replacement so pool capacity recovers. Stats exposes
// watchdog_fired / jobs_wedged / workers_replaced for /metrics.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "pipeline/batch.hpp"
#include "pipeline/mapper_pipeline.hpp"
#include "service/result_cache.hpp"

namespace qfto {

enum class JobStatus {
  kQueued,    // waiting for a worker
  kRunning,   // a worker is executing it
  kDone,      // result available
  kCancelled, // cancel() won (before start or mid-run)
  kExpired,   // the per-job deadline won
  kFailed,    // the engine threw (unknown engine, SATMAP TLE, bad target)
};

/// Terminal outcome visible through a JobHandle.
struct JobResult {
  JobStatus status = JobStatus::kFailed;
  std::string error;  // empty iff kDone
  /// The mapped result (shared with the cache when the request was
  /// cacheable). Null unless kDone.
  std::shared_ptr<const MapResult> result;
  /// Seconds the job sat in the queue before a worker picked it up (or
  /// before it was cancelled/expired without running).
  double queue_seconds = 0.0;
  /// Order in which the service started running jobs (0, 1, ...); -1 when
  /// the job never ran. Exposes scheduling order to tests and benchmarks.
  std::int64_t dispatch_index = -1;

  bool ok() const { return status == JobStatus::kDone; }
};

namespace detail {
struct JobState;
struct ServiceCore;
struct WorkerSlot;
}  // namespace detail

/// Future-like handle to a submitted job. Copyable; all copies observe the
/// same job. A default-constructed handle is empty (valid() == false).
class JobHandle {
 public:
  JobHandle() = default;

  bool valid() const { return state_ != nullptr; }
  JobStatus status() const;

  /// Blocks until the job reaches a terminal status and returns the outcome.
  JobResult wait() const;

  /// wait() with a timeout; nullopt when the job is still queued/running
  /// after `seconds`.
  std::optional<JobResult> wait_for(double seconds) const;

  /// Non-blocking: the outcome when terminal, nullopt otherwise.
  std::optional<JobResult> try_get() const;

  /// Requests cancellation. A queued job is retired immediately (waiters
  /// wake with kCancelled, no worker time is spent); a running job is
  /// cancelled cooperatively — analytical engines abort between pipeline
  /// stages, SATMAP aborts mid-solve. Returns false when the job had
  /// already reached a terminal status.
  bool cancel() const;

 private:
  friend class MappingService;
  explicit JobHandle(std::shared_ptr<detail::JobState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::JobState> state_;
};

class MappingService {
 public:
  struct Options {
    /// Worker threads (0 = hardware concurrency).
    std::int32_t num_threads = 0;
    /// Total ResultCache entries (0 disables caching).
    std::size_t cache_capacity = 1024;
    std::size_t cache_shards = 8;
    /// TTL for cache entries in seconds (0 = never age out). Device-keyed
    /// results can go stale when a device is recalibrated under the same
    /// file name; see ResultCache.
    double cache_ttl_seconds = 0.0;
    /// After the watchdog fires a running job's cancel token at its
    /// deadline, how long the worker gets to retire the job cooperatively
    /// before the watchdog declares it wedged, retires it as kExpired, and
    /// replaces the worker thread.
    double wedge_grace_seconds = 5.0;
  };

  struct Submit {
    /// Higher runs first; FIFO within a priority level.
    std::int32_t priority = 0;
    /// Wall-clock budget from submission to completion (<= 0: none). An
    /// expired job fails with a "deadline exceeded" error; SATMAP jobs
    /// receive only the remaining budget as their solver budget.
    double deadline_seconds = 0.0;
    /// Consult/populate the ResultCache (deterministic engines only).
    bool use_cache = true;
  };

  /// Watchdog / resurrection counters (monotonic over the service's life).
  struct Stats {
    /// Cancel tokens fired by the watchdog at a running job's deadline.
    std::uint64_t watchdog_fired = 0;
    /// Jobs hard-retired as kExpired after the wedge grace elapsed.
    std::uint64_t jobs_wedged = 0;
    /// Wedged worker threads detached and replaced with fresh ones.
    std::uint64_t workers_replaced = 0;
  };

  /// The pipeline must outlive the service. Workers start immediately and
  /// idle on the queue's condition variable until jobs arrive. (The
  /// zero-argument overload stands in for an `Options{}` default argument,
  /// which GCC rejects on nested aggregates with member initializers.)
  explicit MappingService(Options options,
                          const MapperPipeline& pipeline =
                              MapperPipeline::global());
  MappingService();

  /// Drains on destruction: queued jobs are retired as kCancelled, running
  /// jobs get their cancel token flipped, and all workers are joined. A
  /// worker wedged in a non-polling engine is detached once its job's
  /// deadline + grace passes, so shutdown is not held hostage — but the
  /// detached thread may still be executing engine code afterwards, so the
  /// pipeline (and any caller-owned MapOptions::target) must stay alive
  /// until such engines actually return.
  ~MappingService();

  MappingService(const MappingService&) = delete;
  MappingService& operator=(const MappingService&) = delete;

  /// Enqueues `request` and returns its handle. The request is copied;
  /// MapOptions::target, if set, must outlive the job. MapOptions::cancel
  /// is overridden by the job's own token — use JobHandle::cancel().
  JobHandle submit(BatchRequest request, Submit submit);
  JobHandle submit(BatchRequest request);

  /// Process-wide service over MapperPipeline::global() with hardware
  /// concurrency — the persistent pool behind map_qft_batch.
  static MappingService& shared();

  /// Configured pool capacity. Replacement keeps this invariant: a wedged
  /// worker's detachment is paired with a fresh spawn, so num_threads() is
  /// constant over the service's life.
  std::int32_t num_threads() const;
  ResultCache::Stats cache_stats() const;
  Stats stats() const;

  /// Jobs waiting for a worker / currently on one — the /metrics queue-depth
  /// signals and the NetServer's load-shedding inputs. Point-in-time reads;
  /// by the time the caller acts the numbers may have moved. Wedged jobs
  /// leave running_count() when the watchdog retires them, even though the
  /// detached thread may still be unwinding.
  std::size_t queue_depth() const;
  std::size_t running_count() const;

  /// Direct cache access for persistence (--cache-file save/load). The
  /// cache is internally synchronized, so this is safe while workers run.
  ResultCache& cache();

 private:
  void watchdog_loop();
  void replace_worker(const std::shared_ptr<detail::WorkerSlot>& slot,
                      bool respawn);

  /// All state shared with worker threads lives behind a shared_ptr so a
  /// wedged, detached worker that eventually returns from its engine can
  /// finish bookkeeping safely even after the service was destroyed.
  std::shared_ptr<detail::ServiceCore> core_;

  mutable std::mutex workers_mutex_;
  std::vector<std::pair<std::thread, std::shared_ptr<detail::WorkerSlot>>>
      workers_;
  std::thread watchdog_;
};

}  // namespace qfto
