// Async mapping service — the ROADMAP's north-star serving path. A
// MappingService owns a persistent worker pool and a priority job queue in
// front of the MapperPipeline registry: submit() returns a JobHandle
// supporting wait / try_get / cancel and per-job deadlines, and a sharded
// LRU ResultCache serves repeated deterministic requests bit-identically at
// zero cost. map_qft_batch and the `qftmap --serve` front-end are thin
// drivers over this class.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/batch.hpp"
#include "pipeline/mapper_pipeline.hpp"
#include "service/result_cache.hpp"

namespace qfto {

enum class JobStatus {
  kQueued,    // waiting for a worker
  kRunning,   // a worker is executing it
  kDone,      // result available
  kCancelled, // cancel() won (before start or mid-run)
  kExpired,   // the per-job deadline won
  kFailed,    // the engine threw (unknown engine, SATMAP TLE, bad target)
};

/// Terminal outcome visible through a JobHandle.
struct JobResult {
  JobStatus status = JobStatus::kFailed;
  std::string error;  // empty iff kDone
  /// The mapped result (shared with the cache when the request was
  /// cacheable). Null unless kDone.
  std::shared_ptr<const MapResult> result;
  /// Seconds the job sat in the queue before a worker picked it up (or
  /// before it was cancelled/expired without running).
  double queue_seconds = 0.0;
  /// Order in which the service started running jobs (0, 1, ...); -1 when
  /// the job never ran. Exposes scheduling order to tests and benchmarks.
  std::int64_t dispatch_index = -1;

  bool ok() const { return status == JobStatus::kDone; }
};

namespace detail {
struct JobState;
}  // namespace detail

/// Future-like handle to a submitted job. Copyable; all copies observe the
/// same job. A default-constructed handle is empty (valid() == false).
class JobHandle {
 public:
  JobHandle() = default;

  bool valid() const { return state_ != nullptr; }
  JobStatus status() const;

  /// Blocks until the job reaches a terminal status and returns the outcome.
  JobResult wait() const;

  /// wait() with a timeout; nullopt when the job is still queued/running
  /// after `seconds`.
  std::optional<JobResult> wait_for(double seconds) const;

  /// Non-blocking: the outcome when terminal, nullopt otherwise.
  std::optional<JobResult> try_get() const;

  /// Requests cancellation. A queued job is retired immediately (waiters
  /// wake with kCancelled, no worker time is spent); a running job is
  /// cancelled cooperatively — analytical engines abort between pipeline
  /// stages, SATMAP aborts mid-solve. Returns false when the job had
  /// already reached a terminal status.
  bool cancel() const;

 private:
  friend class MappingService;
  explicit JobHandle(std::shared_ptr<detail::JobState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::JobState> state_;
};

class MappingService {
 public:
  struct Options {
    /// Worker threads (0 = hardware concurrency).
    std::int32_t num_threads = 0;
    /// Total ResultCache entries (0 disables caching).
    std::size_t cache_capacity = 1024;
    std::size_t cache_shards = 8;
  };

  struct Submit {
    /// Higher runs first; FIFO within a priority level.
    std::int32_t priority = 0;
    /// Wall-clock budget from submission to completion (<= 0: none). An
    /// expired job fails with a "deadline exceeded" error; SATMAP jobs
    /// receive only the remaining budget as their solver budget.
    double deadline_seconds = 0.0;
    /// Consult/populate the ResultCache (deterministic engines only).
    bool use_cache = true;
  };

  /// The pipeline must outlive the service. Workers start immediately and
  /// idle on the queue's condition variable until jobs arrive. (The
  /// zero-argument overload stands in for an `Options{}` default argument,
  /// which GCC rejects on nested aggregates with member initializers.)
  explicit MappingService(Options options,
                          const MapperPipeline& pipeline =
                              MapperPipeline::global());
  MappingService();

  /// Drains on destruction: queued jobs are retired as kCancelled, running
  /// jobs get their cancel token flipped, and all workers are joined.
  ~MappingService();

  MappingService(const MappingService&) = delete;
  MappingService& operator=(const MappingService&) = delete;

  /// Enqueues `request` and returns its handle. The request is copied;
  /// MapOptions::target, if set, must outlive the job. MapOptions::cancel
  /// is overridden by the job's own token — use JobHandle::cancel().
  JobHandle submit(BatchRequest request, Submit submit);
  JobHandle submit(BatchRequest request);

  /// Process-wide service over MapperPipeline::global() with hardware
  /// concurrency — the persistent pool behind map_qft_batch.
  static MappingService& shared();

  std::int32_t num_threads() const {
    return static_cast<std::int32_t>(workers_.size());
  }
  ResultCache::Stats cache_stats() const { return cache_.stats(); }

  /// Jobs waiting for a worker / currently on one — the /metrics queue-depth
  /// signals and the NetServer's load-shedding inputs. Point-in-time reads;
  /// by the time the caller acts the numbers may have moved.
  std::size_t queue_depth() const;
  std::size_t running_count() const;

  /// Direct cache access for persistence (--cache-file save/load). The
  /// cache is internally synchronized, so this is safe while workers run.
  ResultCache& cache() { return cache_; }

 private:
  struct QueueOrder;

  void worker_loop();
  void process(const std::shared_ptr<detail::JobState>& job);

  const MapperPipeline* pipeline_;
  ResultCache cache_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::priority_queue<std::shared_ptr<detail::JobState>,
                      std::vector<std::shared_ptr<detail::JobState>>,
                      bool (*)(const std::shared_ptr<detail::JobState>&,
                               const std::shared_ptr<detail::JobState>&)>
      queue_;
  bool stopping_ = false;
  std::int64_t next_sequence_ = 0;
  std::atomic<std::int64_t> next_dispatch_{0};
  /// Jobs currently on a worker (guarded by queue_mutex_); the destructor
  /// flips their cancel tokens so shutdown does not wait out solver budgets.
  std::vector<std::shared_ptr<detail::JobState>> running_;

  std::vector<std::thread> workers_;
};

}  // namespace qfto
