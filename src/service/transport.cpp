#include "service/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "common/fault.hpp"

namespace qfto {
namespace net {

namespace {

bool resolve_ipv4(const std::string& host, in_addr& out) {
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  return ::inet_pton(AF_INET, numeric.c_str(), &out) == 1;
}

}  // namespace

// ------------------------------------------------------------------ Socket --

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::send_all(const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    if (QFTO_FAULT_POINT("net.send.fail")) return false;  // injected reset
    std::size_t chunk = len;
    if (len > 1 && QFTO_FAULT_POINT("net.send.short")) {
      // Injected short write: push only half of what remains so the partial-
      // write continuation below is exercised, not just trusted.
      chunk = len / 2;
    }
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the process
    // with SIGPIPE — the writer loop turns the error into cancellation.
    const ssize_t sent = ::send(fd_, p, chunk, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;  // incl. EAGAIN from SO_SNDTIMEO: treat a stuck peer as dead
    }
    if (sent == 0) return false;
    p += sent;
    len -= static_cast<std::size_t>(sent);
  }
  return true;
}

long Socket::recv_some(void* buf, std::size_t len) {
  if (QFTO_FAULT_POINT("net.recv.fail")) {
    errno = ECONNRESET;
    return -1;
  }
  if (QFTO_FAULT_POINT("net.recv.eof")) return 0;  // injected peer close
  for (;;) {
    const ssize_t got = ::recv(fd_, buf, len, 0);
    if (got < 0 && errno == EINTR) continue;
    return static_cast<long>(got);
  }
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::set_send_timeout_ms(int ms) {
  if (fd_ < 0 || ms < 0) return;
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// ---------------------------------------------------------------- HostPort --

bool parse_host_port(const std::string& text, HostPort& out,
                     std::string& error) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == text.size()) {
    error = "expected HOST:PORT, got \"" + text + "\"";
    return false;
  }
  const std::string host = text.substr(0, colon);
  in_addr probe;
  if (!resolve_ipv4(host, probe)) {
    error = "cannot resolve \"" + host + "\" (numeric IPv4 or localhost)";
    return false;
  }
  long port = 0;
  for (std::size_t i = colon + 1; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9' || port > 65535) {
      error = "bad port in \"" + text + "\"";
      return false;
    }
    port = port * 10 + (c - '0');
  }
  if (port > 65535) {
    error = "bad port in \"" + text + "\"";
    return false;
  }
  out.host = host;
  out.port = static_cast<std::uint16_t>(port);
  return true;
}

// -------------------------------------------------------------------- dial --

Socket dial(const std::string& host, std::uint16_t port, std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (!resolve_ipv4(host, addr.sin_addr)) {
    if (error != nullptr) *error = "cannot resolve \"" + host + "\"";
    return Socket{};
  }
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    if (error != nullptr) *error = std::strerror(errno);
    return Socket{};
  }
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return Socket{};
  }
  return sock;
}

// ---------------------------------------------------------------- Listener --

Listener::Listener(const std::string& host, std::uint16_t port, int backlog)
    : host_(host) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (!resolve_ipv4(host, addr.sin_addr)) {
    throw std::runtime_error("listen: cannot resolve \"" + host + "\"");
  }
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    throw std::runtime_error(std::string("listen: socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw std::runtime_error("listen: bind " + host + ":" +
                             std::to_string(port) + ": " +
                             std::strerror(errno));
  }
  if (::listen(sock.fd(), backlog) != 0) {
    throw std::runtime_error(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    throw std::runtime_error(std::string("listen: getsockname: ") +
                             std::strerror(errno));
  }
  port_ = ntohs(bound.sin_port);
  sock_ = std::move(sock);
}

Socket Listener::accept_connection(int timeout_ms, int wake_fd) {
  if (!sock_.valid()) return Socket{};
  pollfd pfds[2];
  pfds[0] = pollfd{};
  pfds[0].fd = sock_.fd();
  pfds[0].events = POLLIN;
  nfds_t nfds = 1;
  if (wake_fd >= 0) {
    pfds[1] = pollfd{};
    pfds[1].fd = wake_fd;
    pfds[1].events = POLLIN;
    nfds = 2;
  }
  const int ready = ::poll(pfds, nfds, timeout_ms);
  if (ready <= 0) return Socket{};  // timeout or poll error
  // A self-pipe byte means "stop requested": return to the caller at once —
  // and deliberately without draining the pipe, so the wake-up latches for
  // any subsequent poll too. Checking it first makes shutdown win ties.
  if (nfds == 2 && (pfds[1].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
    return Socket{};
  }
  if ((pfds[0].revents & POLLIN) == 0) return Socket{};
  const int fd = ::accept(sock_.fd(), nullptr, nullptr);
  if (fd < 0) return Socket{};
  return Socket(fd);
}

// -------------------------------------------------------------- LineReader --

bool LineReader::fill() {
  char chunk[16384];
  const long got = sock_->recv_some(chunk, sizeof(chunk));
  if (got <= 0) {
    status_ = got == 0 ? Status::kEof : Status::kError;
    return false;
  }
  buf_.append(chunk, static_cast<std::size_t>(got));
  return true;
}

bool LineReader::next(std::string& line) {
  if (status_ != Status::kOk) return false;
  for (;;) {
    const std::size_t nl = buf_.find('\n', pos_);
    if (nl != std::string::npos) {
      std::size_t len = nl - pos_;
      if (len > 0 && buf_[pos_ + len - 1] == '\r') --len;
      line.assign(buf_, pos_, len);
      pos_ = nl + 1;
      if (pos_ >= buf_.size()) {
        buf_.clear();
        pos_ = 0;
      }
      return true;
    }
    // Compact before growing so the bound applies to the unframed tail, not
    // to total connection traffic.
    if (pos_ > 0) {
      buf_.erase(0, pos_);
      pos_ = 0;
    }
    if (buf_.size() > max_line_) {
      status_ = Status::kOverflow;
      return false;
    }
    if (!fill()) return false;
  }
}

bool LineReader::read_exact(std::size_t n, std::string& out) {
  if (status_ != Status::kOk) return false;
  out.clear();
  const std::size_t buffered = std::min(n, buf_.size() - pos_);
  out.append(buf_, pos_, buffered);
  pos_ += buffered;
  if (pos_ >= buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  while (out.size() < n) {
    char chunk[16384];
    const long got =
        sock_->recv_some(chunk, std::min(sizeof(chunk), n - out.size()));
    if (got <= 0) {
      status_ = got == 0 ? Status::kEof : Status::kError;
      return false;
    }
    out.append(chunk, static_cast<std::size_t>(got));
  }
  return true;
}

// ------------------------------------------------------------------- retry --

namespace {

// splitmix64: deterministic jitter from (seed, attempt) with no shared state.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

double backoff_delay(const RetryPolicy& policy, int attempt) {
  if (attempt < 1) attempt = 1;
  double delay = policy.base_seconds;
  for (int i = 1; i < attempt && delay < policy.max_seconds; ++i) {
    delay *= policy.multiplier;
  }
  if (delay > policy.max_seconds) delay = policy.max_seconds;
  if (delay < 0.0) delay = 0.0;
  const std::uint64_t r =
      mix64(policy.jitter_seed + static_cast<std::uint64_t>(attempt));
  const double unit =
      static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);  // [0, 1)
  return delay * (0.5 + 0.5 * unit);
}

RetryResult request_with_retry(const std::string& host, std::uint16_t port,
                               const std::string& request_line,
                               const RetryPolicy& policy) {
  std::string line = request_line;
  if (line.empty() || line.back() != '\n') line += '\n';
  RetryResult result;
  const int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    result.attempts = attempt;
    if (attempt > 1) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(backoff_delay(policy, attempt - 1)));
    }
    std::string dial_error;
    Socket sock = dial(host, port, &dial_error);
    if (!sock.valid()) {
      result.error = "dial: " + dial_error;
      continue;
    }
    if (!sock.send_all(line)) {
      result.error = "send failed";
      continue;
    }
    LineReader reader(sock);
    std::string response;
    if (!reader.next(response)) {
      result.error = reader.status() == LineReader::Status::kEof
                         ? "connection closed before response"
                         : "read failed";
      continue;
    }
    // The serve taxonomy's transient statuses (timeout, shed) are marked
    // retryable in-band; matched textually so this layer stays JSON-free.
    if (attempt < max_attempts &&
        response.find("\"retryable\":true") != std::string::npos) {
      result.error = "retryable response";
      continue;
    }
    result.ok = true;
    result.response = std::move(response);
    result.error.clear();
    return result;
  }
  return result;
}

// -------------------------------------------------------- LatencyHistogram --

void LatencyHistogram::record(double seconds) {
  int idx = 0;
  if (seconds > kFloorSeconds) {
    idx = static_cast<int>(std::log2(seconds / kFloorSeconds) *
                           kBucketsPerOctave);
    if (idx < 0) idx = 0;
    if (idx >= kBuckets) idx = kBuckets - 1;
  }
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

double LatencyHistogram::quantile(double q) const {
  std::array<std::uint64_t, kBuckets> snap;
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    snap[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap[i];
  }
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample, 1-based; q=1 is the max-holding bucket.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                     q * static_cast<double>(total) + 0.5));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += snap[i];
    if (seen >= rank) {
      return kFloorSeconds *
             std::exp2((i + 0.5) / static_cast<double>(kBucketsPerOctave));
    }
  }
  return kFloorSeconds * std::exp2(static_cast<double>(kBuckets) /
                                   kBucketsPerOctave);
}

}  // namespace net
}  // namespace qfto
